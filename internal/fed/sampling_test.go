package fed

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/evfed/evfed/internal/nn"
)

// stubHandle is a zero-compute client: Train echoes back a canned weight
// vector and tracks the coordinator's concurrency. It does not implement
// Prober.
type stubHandle struct {
	id      string
	weights []float64

	inFlight *atomic.Int32
	maxSeen  *atomic.Int32
	trained  *atomic.Int32
}

func (s *stubHandle) ID() string               { return s.id }
func (s *stubHandle) NumSamples() (int, error) { return 1, nil }

func (s *stubHandle) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	if s.inFlight != nil {
		cur := s.inFlight.Add(1)
		for {
			seen := s.maxSeen.Load()
			if cur <= seen || s.maxSeen.CompareAndSwap(seen, cur) {
				break
			}
		}
		defer s.inFlight.Add(-1)
	}
	if s.trained != nil {
		s.trained.Add(1)
	}
	time.Sleep(time.Millisecond) // force overlap so the pool bound is observable
	return Update{
		ClientID:   s.id,
		Weights:    s.weights,
		NumSamples: 1,
		FinalLoss:  0.1,
	}, nil
}

// stubFederation builds n zero-compute handles with instrumented
// concurrency counters, all serving weight vectors of the spec's
// dimension.
func stubFederation(t *testing.T, n int) ([]ClientHandle, *atomic.Int32, *atomic.Int32) {
	t.Helper()
	m, err := nn.Build(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	weights := m.WeightsVector()
	var inFlight, maxSeen atomic.Int32
	handles := make([]ClientHandle, n)
	for i := 0; i < n; i++ {
		handles[i] = &stubHandle{
			id:       string(rune('a'+i%26)) + string(rune('0'+i/26)),
			weights:  weights,
			inFlight: &inFlight,
			maxSeen:  &maxSeen,
		}
	}
	return handles, &inFlight, &maxSeen
}

// TestSamplingFiftyClientsDeterministic is the scale acceptance scenario:
// a 50-client federation with ClientFraction 0.2 and a bounded worker
// pool completes, trains exactly 10 clients per round, respects the
// concurrency bound, and reproduces the same participant sets for a
// fixed seed.
func TestSamplingFiftyClientsDeterministic(t *testing.T) {
	const (
		nClients = 50
		rounds   = 3
		pool     = 4
	)
	run := func() (*RunResult, int32) {
		handles, _, maxSeen := stubFederation(t, nClients)
		cfg := smallConfig(83)
		cfg.Rounds = rounds
		cfg.ClientFraction = 0.2
		cfg.MaxConcurrentClients = pool
		co, err := NewCoordinator(smallSpec(), handles, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := co.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, maxSeen.Load()
	}
	res1, max1 := run()
	res2, _ := run()

	if len(res1.Rounds) != rounds {
		t.Fatalf("rounds %d", len(res1.Rounds))
	}
	sawDifferentSets := false
	for r, rs := range res1.Rounds {
		if len(rs.Selected) != 10 {
			t.Fatalf("round %d selected %d clients, want 10 (C=0.2 of 50)", r, len(rs.Selected))
		}
		if len(rs.Participants) != 10 {
			t.Fatalf("round %d participants %d, want 10", r, len(rs.Participants))
		}
		if !reflect.DeepEqual(rs.Selected, res2.Rounds[r].Selected) {
			t.Fatalf("round %d selection not deterministic:\n%v\n%v", r, rs.Selected, res2.Rounds[r].Selected)
		}
		if !reflect.DeepEqual(rs.Participants, res2.Rounds[r].Participants) {
			t.Fatalf("round %d participants not deterministic", r)
		}
		if r > 0 && !reflect.DeepEqual(rs.Selected, res1.Rounds[0].Selected) {
			sawDifferentSets = true
		}
	}
	if !sawDifferentSets {
		t.Fatal("every round sampled the identical subset; sampling is not rotating (seed-dependent; adjust seed)")
	}
	if max1 > pool {
		t.Fatalf("observed %d concurrent Train calls, pool bound is %d", max1, pool)
	}
	if len(res1.Global) == 0 {
		t.Fatal("no global weights")
	}
}

// TestSamplingFractionUnsetSelectsAll pins the compatibility behaviour:
// with ClientFraction 0 (or 1) every client is selected every round and
// no sampling RNG state is consumed.
func TestSamplingFractionUnsetSelectsAll(t *testing.T) {
	for _, frac := range []float64{0, 1} {
		handles, _, _ := stubFederation(t, 7)
		cfg := smallConfig(89)
		cfg.ClientFraction = frac
		co, err := NewCoordinator(smallSpec(), handles, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := co.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, rs := range res.Rounds {
			if len(rs.Selected) != 7 || len(rs.Participants) != 7 {
				t.Fatalf("fraction %v: round %d selected %d / participants %d, want 7/7",
					frac, rs.Round, len(rs.Selected), len(rs.Participants))
			}
		}
	}
}

// TestSamplingRealClients runs sampling over genuine training clients,
// confirming the aggregation path works when only a subset contributes.
func TestSamplingRealClients(t *testing.T) {
	clients := makeClients(t, 4)
	cfg := smallConfig(97)
	cfg.Rounds = 3
	cfg.EpochsPerRound = 1
	cfg.ClientFraction = 0.5
	cfg.MaxConcurrentClients = 2
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range res.Rounds {
		if len(rs.Selected) != 2 {
			t.Fatalf("round %d selected %v, want 2 of 4", rs.Round, rs.Selected)
		}
		if len(rs.Participants) != 2 {
			t.Fatalf("round %d participants %v", rs.Round, rs.Participants)
		}
		if rs.MeanLoss <= 0 {
			t.Fatalf("round %d mean loss %v", rs.Round, rs.MeanLoss)
		}
	}
	if len(res.Global) == 0 {
		t.Fatal("no global weights")
	}
}

// badDimHandle reports an incompatible model dimension during preflight.
type badDimHandle struct{ stubHandle }

func (b *badDimHandle) Hello() (HelloInfo, error) {
	return HelloInfo{StationID: b.id, ModelDim: 3, NumSamples: 1}, nil
}

func TestPreflightRejectsDimMismatch(t *testing.T) {
	handles, _, _ := stubFederation(t, 2)
	handles[1] = &badDimHandle{stubHandle{id: "bad", weights: []float64{1, 2, 3}}}
	cfg := smallConfig(101)
	co, err := NewCoordinator(smallSpec(), handles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("want ErrDimMismatch, got %v", err)
	}
	// The mismatch is a configuration bug: tolerance must not mask it.
	cfg.TolerateClientErrors = true
	co, err = NewCoordinator(smallSpec(), handles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("tolerant run: want ErrDimMismatch, got %v", err)
	}
}

func TestConfigValidatesRuntimeKnobs(t *testing.T) {
	handles, _, _ := stubFederation(t, 2)
	for _, mut := range []func(*Config){
		func(c *Config) { c.MaxConcurrentClients = -1 },
		func(c *Config) { c.ClientFraction = -0.1 },
		func(c *Config) { c.ClientFraction = 1.5 },
		func(c *Config) { c.RoundDeadline = -time.Second },
	} {
		cfg := smallConfig(1)
		mut(&cfg)
		if _, err := NewCoordinator(smallSpec(), handles, cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("mutated config should be rejected, got %v", err)
		}
	}
}
