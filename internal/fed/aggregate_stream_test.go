package fed

import (
	"errors"
	"math"
	"testing"

	"github.com/evfed/evfed/internal/rng"
)

func randomUpdates(t *testing.T, seed uint64, clients, dim int) []Update {
	t.Helper()
	r := rng.New(seed)
	ups := make([]Update, clients)
	for c := range ups {
		w := make([]float64, dim)
		for i := range w {
			w[i] = r.Normal(0, 1)
		}
		ups[c] = Update{ClientID: string(rune('a' + c)), Weights: w, NumSamples: 1 + r.Intn(50)}
	}
	return ups
}

func streamRound(t *testing.T, st StreamAggregator, ups []Update, dim int) []float64 {
	t.Helper()
	st.Begin(dim, len(ups))
	for i := range ups {
		if err := st.Add(&ups[i]); err != nil {
			t.Fatal(err)
		}
	}
	out, err := st.Finish(make([]float64, dim))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// The streaming implementations must agree with the one-shot Aggregate
// path: exactly for the order-statistic rules, and to accumulation-order
// rounding for the mean family.
func TestStreamAggregatorsMatchBatch(t *testing.T) {
	const dim = 777 // exercises a partial column block
	for _, tc := range []struct {
		agg   Aggregator
		exact bool
	}{
		{MeanAggregator{}, false},
		{UniformAggregator{}, false},
		{MedianAggregator{}, true},
		{TrimmedMeanAggregator{TrimPerSide: 1}, true},
	} {
		for _, clients := range []int{1, 2, 4, 9} {
			if _, ok := tc.agg.(TrimmedMeanAggregator); ok && clients < 3 {
				continue
			}
			ups := randomUpdates(t, uint64(clients)*13, clients, dim)
			batch, err := tc.agg.Aggregate(ups)
			if err != nil {
				t.Fatal(err)
			}
			stream := streamRound(t, NewStream(tc.agg), ups, dim)
			for i := range batch {
				if tc.exact {
					if stream[i] != batch[i] {
						t.Fatalf("%s clients=%d: stream[%d]=%v batch=%v",
							tc.agg.Name(), clients, i, stream[i], batch[i])
					}
				} else if math.Abs(stream[i]-batch[i]) > 1e-12*(1+math.Abs(batch[i])) {
					t.Fatalf("%s clients=%d: stream[%d]=%v batch=%v",
						tc.agg.Name(), clients, i, stream[i], batch[i])
				}
			}
		}
	}
}

// Quickselect-based order statistics must agree with a reference sort.
func TestRankAggregateMatchesSortReference(t *testing.T) {
	const dim = 300
	for _, clients := range []int{1, 2, 3, 5, 8, 11} {
		ups := randomUpdates(t, uint64(clients)*31, clients, dim)
		med, err := (MedianAggregator{}).Aggregate(ups)
		if err != nil {
			t.Fatal(err)
		}
		col := make([]float64, clients)
		for i := 0; i < dim; i++ {
			for c := range ups {
				col[c] = ups[c].Weights[i]
			}
			// Reference: insertion sort of the column.
			for a := 1; a < clients; a++ {
				for b := a; b > 0 && col[b] < col[b-1]; b-- {
					col[b], col[b-1] = col[b-1], col[b]
				}
			}
			var want float64
			if clients%2 == 1 {
				want = col[clients/2]
			} else {
				want = (col[clients/2-1] + col[clients/2]) / 2
			}
			if med[i] != want {
				t.Fatalf("clients=%d coord %d: median %v want %v", clients, i, med[i], want)
			}
		}
		if clients >= 3 {
			trm, err := (TrimmedMeanAggregator{TrimPerSide: 1}).Aggregate(ups)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < dim; i++ {
				for c := range ups {
					col[c] = ups[c].Weights[i]
				}
				for a := 1; a < clients; a++ {
					for b := a; b > 0 && col[b] < col[b-1]; b-- {
						col[b], col[b-1] = col[b-1], col[b]
					}
				}
				var sum float64
				for _, v := range col[1 : clients-1] {
					sum += v
				}
				want := sum / float64(clients-2)
				if math.Abs(trm[i]-want) > 1e-12*(1+math.Abs(want)) {
					t.Fatalf("clients=%d coord %d: trimmed %v want %v", clients, i, trm[i], want)
				}
			}
		}
	}
}

// Acceptance gate: the coordinator's aggregation step — Begin, one Add
// per client, Finish into a retained destination — allocates nothing in
// steady state, for every built-in aggregator.
func TestStreamAggregatorsSteadyStateAllocFree(t *testing.T) {
	const dim, clients = 2048, 8
	ups := randomUpdates(t, 99, clients, dim)
	for _, agg := range []Aggregator{
		MeanAggregator{},
		UniformAggregator{},
		MedianAggregator{},
		TrimmedMeanAggregator{TrimPerSide: 2},
	} {
		st := NewStream(agg)
		dst := make([]float64, dim)
		round := func() {
			st.Begin(dim, clients)
			for i := range ups {
				if err := st.Add(&ups[i]); err != nil {
					t.Fatal(err)
				}
			}
			out, err := st.Finish(dst)
			if err != nil {
				t.Fatal(err)
			}
			dst = out
		}
		round() // warm the scratch
		if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
			t.Fatalf("%s: aggregation round allocates (%v allocs/op)", agg.Name(), allocs)
		}
	}
}

func TestStreamAggregatorErrors(t *testing.T) {
	st := NewStream(MeanAggregator{})
	st.Begin(3, 2)
	bad := Update{ClientID: "x", Weights: []float64{1, 2}, NumSamples: 1}
	if err := st.Add(&bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("dim mismatch: %v", err)
	}
	st.Begin(3, 2)
	zero := Update{ClientID: "z", Weights: []float64{1, 2, 3}, NumSamples: 0}
	if err := st.Add(&zero); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero samples: %v", err)
	}
	st.Begin(3, 0)
	if _, err := st.Finish(make([]float64, 3)); !errors.Is(err, ErrNoClients) {
		t.Fatalf("empty round: %v", err)
	}
	tr := NewStream(TrimmedMeanAggregator{TrimPerSide: 1})
	tr.Begin(2, 1)
	one := Update{ClientID: "a", Weights: []float64{1, 2}, NumSamples: 1}
	if err := tr.Add(&one); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Finish(make([]float64, 2)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("over-trim: %v", err)
	}
	// A negative trim must surface as ErrBadConfig through the streaming
	// path too, not silently degrade to the median.
	neg := NewStream(TrimmedMeanAggregator{TrimPerSide: -1})
	neg.Begin(2, 1)
	if err := neg.Add(&one); err != nil {
		t.Fatal(err)
	}
	if _, err := neg.Finish(make([]float64, 2)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative trim: %v", err)
	}
}

// customAgg exercises the buffered fallback for aggregators the streaming
// layer does not specialize.
type customAgg struct{}

func (customAgg) Name() string { return "first-client" }
func (customAgg) Aggregate(updates []Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, ErrNoClients
	}
	out := append([]float64(nil), updates[0].Weights...)
	return out, nil
}

func TestStreamAggregatorBufferedFallback(t *testing.T) {
	ups := randomUpdates(t, 5, 3, 17)
	out := streamRound(t, NewStream(customAgg{}), ups, 17)
	for i := range out {
		if out[i] != ups[0].Weights[i] {
			t.Fatalf("fallback diverges at %d", i)
		}
	}
}
