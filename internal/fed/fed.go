// Package fed implements the paper's federated learning runtime: local
// LSTM clients that train on private data, a FedAvg coordinator that
// aggregates weight vectors across rounds (weighted by sample count), and
// pluggable transports — in-process handles for deterministic experiments
// and a binary TCP transport (internal/fed/wire) for genuinely
// distributed deployments, with optional update compression (float32
// downcast or int8 delta quantization) selected by Codec.
//
// Privacy property (paper §I): only model parameter vectors cross the
// client boundary; raw charging data never leaves the client.
//
// Hyperparameters mirror the paper: FEDERATED_ROUNDS = 5,
// EPOCHS_PER_ROUND = 10, LSTM_UNITS = 50, LEARNING_RATE = 0.001,
// batch 32, SEQUENCE_LENGTH = 24.
package fed

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/evfed/evfed/internal/fed/wire"
	"github.com/evfed/evfed/internal/nn"
	"github.com/evfed/evfed/internal/rng"
	"github.com/evfed/evfed/internal/series"
)

// Errors returned by the package.
var (
	ErrBadConfig     = errors.New("fed: invalid configuration")
	ErrNoClients     = errors.New("fed: no clients")
	ErrAllDropped    = errors.New("fed: every client dropped out of a round")
	ErrRoundDeadline = errors.New("fed: round deadline exceeded")
	ErrDimMismatch   = errors.New("fed: station model dimension mismatch")
)

// Codec selects the compression applied to weight vectors crossing the
// federation boundary. Compression trades a bounded, measured amount of
// accuracy for a large cut in per-round traffic — the binding constraint
// for stations on thin uplinks.
type Codec uint8

// Supported codecs, ordered by compression level.
const (
	// CodecNone ships full float64 vectors (8 bytes/parameter).
	CodecNone Codec = iota
	// CodecF32 downcasts both directions to float32 (4 bytes/parameter,
	// ~1e-7 relative rounding error).
	CodecF32
	// CodecQ8 int8-quantizes weight *deltas* (1 byte/parameter): uplink
	// deltas are taken against the round's broadcast global; downlink
	// broadcasts are delta-coded against the previous broadcast once a
	// connection has one (the first broadcast on a connection falls back
	// to float32). Per-coordinate error is bounded by maxabs(delta)/254
	// per 4096-value chunk.
	CodecQ8
)

// ParseCodec maps a flag string to a Codec: "none" (or "f64"), "f32", "q8".
func ParseCodec(s string) (Codec, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none", "f64", "float64":
		return CodecNone, nil
	case "f32", "float32":
		return CodecF32, nil
	case "q8", "int8":
		return CodecQ8, nil
	}
	return 0, fmt.Errorf("%w: unknown codec %q (want none, f32 or q8)", ErrBadConfig, s)
}

// String names the codec as ParseCodec accepts it.
func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecF32:
		return "f32"
	case CodecQ8:
		return "q8"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

func (c Codec) validate() error {
	if c > CodecQ8 {
		return fmt.Errorf("%w: codec %d", ErrBadConfig, c)
	}
	return nil
}

// upVec is the wire encoding of a client update under this codec.
func (c Codec) upVec() wire.VecCodec {
	switch c {
	case CodecF32:
		return wire.VecF32
	case CodecQ8:
		return wire.VecQ8
	default:
		return wire.VecF64
	}
}

// downVec is the wire encoding of a broadcast under this codec, given
// whether the connection already holds a delta reference.
func (c Codec) downVec(haveRef bool) wire.VecCodec {
	switch c {
	case CodecF32:
		return wire.VecF32
	case CodecQ8:
		if haveRef {
			return wire.VecQ8
		}
		return wire.VecF32
	default:
		return wire.VecF64
	}
}

// maxVecCodec returns the more compressed of two wire encodings (the
// VecCodec constants are ordered by compression level).
func maxVecCodec(a, b wire.VecCodec) wire.VecCodec {
	if b > a {
		return b
	}
	return a
}

// Update is one client's contribution to a round.
type Update struct {
	// ClientID identifies the sender.
	ClientID string
	// Weights is the locally trained weight vector.
	Weights []float64
	// NumSamples weights the FedAvg average.
	NumSamples int
	// TrainSeconds is the client-reported local training time.
	TrainSeconds float64
	// FinalLoss is the client's last local training loss.
	FinalLoss float64
}

// LocalTrainConfig is what the coordinator sends to a client each round.
type LocalTrainConfig struct {
	// Epochs is the number of local epochs (paper: 10).
	Epochs int
	// BatchSize is the minibatch size (paper: 32).
	BatchSize int
	// LearningRate feeds the client's Adam optimizer (paper: 1e-3).
	LearningRate float64
	// Workers bounds parallel gradient workers on the client.
	Workers int
	// Round is the 0-based round index (seeds per-round shuffling).
	Round int
	// Privacy optionally privatizes the update delta before it leaves the
	// client (clip + Gaussian noise). Zero value disables it.
	Privacy Privacy
	// ProximalMu enables FedProx local training: the local objective gains
	// μ/2·‖w − w_global‖², pulling each client's solution toward the
	// broadcast global model. This is the standard remedy for client
	// drift on heterogeneous (non-IID) data — exactly the spatial
	// heterogeneity regime of the paper's zones. 0 = plain FedAvg.
	ProximalMu float64
	// Codec selects the wire compression for weight exchange. The TCP
	// transport encodes with it for real; in-process clients apply the
	// identical value round trip (downlink float32 reference, uplink
	// downcast or delta quantization), so accuracy parity between codecs
	// is measurable without a network.
	Codec Codec
	// PartialKind tells aggregation-node clients (edges) which partial
	// form the parent's aggregation rule folds. Leaf stations ignore it.
	PartialKind PartialKind
}

// ClientHandle abstracts how the coordinator reaches a client: in-process
// or over the network.
type ClientHandle interface {
	// ID returns a stable client identifier.
	ID() string
	// NumSamples reports the client's training-set size (for weighting).
	NumSamples() (int, error)
	// Train installs the global weights, runs local training and returns
	// the client's update.
	Train(global []float64, cfg LocalTrainConfig) (Update, error)
}

// Client is the in-process client implementation: it owns a private
// training set and a local model built from the shared spec.
type Client struct {
	id string
	// mu serializes Train calls: the local model is stateful, and a
	// coordinator retry or abandoned straggler call can overlap a live
	// round's call (each ClientServer connection gets its own handler
	// goroutine). Queued calls each install their own broadcast weights,
	// so every call still returns a self-consistent update.
	mu      sync.Mutex
	model   *nn.Model
	inputs  []nn.Seq
	targets []nn.Seq
	seed    uint64
	// simRef is the reusable downlink-reconstruction buffer for codec
	// simulation (see LocalTrainConfig.Codec).
	simRef []float64
}

var _ ClientHandle = (*Client)(nil)
var _ Prober = (*Client)(nil)

// NewClient builds an in-process client from scaled series values. seqLen
// windowing happens here so the raw series never leaves the client
// boundary in any form.
func NewClient(id string, spec nn.Spec, values []float64, seqLen int, seed uint64) (*Client, error) {
	ws, err := series.MakeWindows(values, seqLen)
	if err != nil {
		return nil, fmt.Errorf("fed: client %s: %w", id, err)
	}
	model, err := nn.Build(spec, seed)
	if err != nil {
		return nil, fmt.Errorf("fed: client %s: %w", id, err)
	}
	c := &Client{id: id, model: model, seed: seed}
	for _, w := range ws {
		c.inputs = append(c.inputs, w.Input)
		c.targets = append(c.targets, nn.Seq{{w.Target}})
	}
	return c, nil
}

// NewReconstructionClient builds an in-process client whose local
// objective is sequence reconstruction (targets = inputs) — federated
// training of the paper's LSTM-autoencoder detector rather than the
// forecaster. Pair spec with nn.AutoencoderSpec(seqLen, ...). A
// coordinator running over reconstruction clients plus Config.OnRound
// gives the full serving loop: each round's aggregated detector weights
// hot-reload into a live scoring service.
func NewReconstructionClient(id string, spec nn.Spec, values []float64, seqLen int, seed uint64) (*Client, error) {
	seqs, err := series.MakeSequences(values, seqLen, 1)
	if err != nil {
		return nil, fmt.Errorf("fed: client %s: %w", id, err)
	}
	model, err := nn.Build(spec, seed)
	if err != nil {
		return nil, fmt.Errorf("fed: client %s: %w", id, err)
	}
	c := &Client{id: id, model: model, seed: seed}
	for _, s := range seqs {
		c.inputs = append(c.inputs, nn.Seq(s))
		c.targets = append(c.targets, nn.Seq(s))
	}
	return c, nil
}

// ID implements ClientHandle.
func (c *Client) ID() string { return c.id }

// NumSamples implements ClientHandle.
func (c *Client) NumSamples() (int, error) { return len(c.inputs), nil }

// Hello implements Prober: an in-process client reports its identity and
// model dimension directly, so the coordinator's pre-round compatibility
// check covers local and remote clients alike.
func (c *Client) Hello() (HelloInfo, error) {
	return HelloInfo{
		StationID:  c.id,
		ModelDim:   c.model.NumParams(),
		NumSamples: len(c.inputs),
	}, nil
}

// Train implements ClientHandle. With a compression codec configured it
// simulates the wire's exact value transformations: the installed global
// passes through the float32 downlink reconstruction and the returned
// update through the uplink downcast (CodecF32) or delta quantization
// against the reconstructed broadcast (CodecQ8) — the same arithmetic the
// TCP transport performs, so in-process accuracy measurements transfer.
// (A TCP deployment's steady-state downlink additionally delta-codes
// broadcasts against the previous round's, whose error is bounded the
// same way; see DESIGN.md §8.)
func (c *Client) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := cfg.Codec.validate(); err != nil {
		return Update{}, fmt.Errorf("fed: client %s: %w", c.id, err)
	}
	ref := global
	if cfg.Codec != CodecNone {
		if cap(c.simRef) < len(global) {
			c.simRef = make([]float64, len(global))
		}
		c.simRef = c.simRef[:len(global)]
		copy(c.simRef, global)
		wire.RoundTripF32(c.simRef)
		ref = c.simRef
	}
	if err := c.model.SetWeightsVector(ref); err != nil {
		return Update{}, fmt.Errorf("fed: client %s: install global weights: %w", c.id, err)
	}
	tc := nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Optimizer: nn.NewAdam(cfg.LearningRate),
		Loss:      nn.MSE{},
		Shuffle:   true,
		Seed:      c.seed + uint64(cfg.Round)*1000003,
		ClipNorm:  5,
		Workers:   cfg.Workers,
	}
	if cfg.ProximalMu > 0 {
		tc.ProxMu = cfg.ProximalMu
		prox := make([]float64, len(ref))
		copy(prox, ref)
		tc.ProxRef = prox
	}
	start := time.Now()
	hist, err := nn.Fit(c.model, c.inputs, c.targets, tc)
	if err != nil {
		return Update{}, fmt.Errorf("fed: client %s: local fit: %w", c.id, err)
	}
	weights := c.model.WeightsVector()
	if cfg.Privacy.Enabled() {
		privRNG := rng.New(c.seed ^ (uint64(cfg.Round+1) * 0x9e3779b97f4a7c15) ^ 0xd9)
		if err := cfg.Privacy.privatize(weights, ref, privRNG); err != nil {
			return Update{}, fmt.Errorf("fed: client %s: privatize: %w", c.id, err)
		}
	}
	// Simulate the uplink leg of the wire codec.
	switch cfg.Codec {
	case CodecF32:
		wire.RoundTripF32(weights)
	case CodecQ8:
		if err := wire.RoundTripQ8(weights, ref); err != nil {
			return Update{}, fmt.Errorf("fed: client %s: quantize update: %w", c.id, err)
		}
	}
	return Update{
		ClientID:     c.id,
		Weights:      weights,
		NumSamples:   len(c.inputs),
		TrainSeconds: time.Since(start).Seconds(),
		FinalLoss:    hist.FinalTrainLoss(),
	}, nil
}

// Model exposes the client's local model (e.g. to evaluate local
// specialization).
func (c *Client) Model() *nn.Model { return c.model }

// FedAvg computes the sample-weighted average of the updates' weight
// vectors — McMahan et al.'s Federated Averaging, the paper's aggregation
// rule.
func FedAvg(updates []Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, ErrNoClients
	}
	dim := len(updates[0].Weights)
	total := 0
	for _, u := range updates {
		if len(u.Weights) != dim {
			return nil, fmt.Errorf("%w: client %s weight dim %d != %d",
				ErrBadConfig, u.ClientID, len(u.Weights), dim)
		}
		if u.NumSamples <= 0 {
			return nil, fmt.Errorf("%w: client %s reports %d samples",
				ErrBadConfig, u.ClientID, u.NumSamples)
		}
		total += u.NumSamples
	}
	out := make([]float64, dim)
	for _, u := range updates {
		w := float64(u.NumSamples) / float64(total)
		for i, v := range u.Weights {
			out[i] += w * v
		}
	}
	return out, nil
}
