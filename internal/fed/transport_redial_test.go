package fed

import (
	"math"
	"testing"
)

// TestTransportRedialResetsQ8DeltaReference is the mid-federation restart
// regression for the delta codec: the serving peer dies between rounds
// and comes back on the same address with empty session state. The
// transparent re-dial must reset the connection-scoped delta reference on
// BOTH ends — the next broadcast falls back to a full frame (asserted via
// the measured per-round downlink bytes), delta coding resumes the round
// after, and the federation lands bit-identical to a run that explicitly
// closed the handle between rounds (the known-good reset path).
func TestTransportRedialResetsQ8DeltaReference(t *testing.T) {
	skipIfShort(t)

	// run drives a 3-round q8 federation over one TCP station, invoking
	// between after round 0 completes; it returns the final global model
	// and the bytes rc actually put on the wire per round.
	run := func(between func(c *Client, srv *ClientServer, rc *RemoteClient) *ClientServer) ([]float64, []uint64) {
		c, err := NewClient("sta", smallSpec(), clientSeries(150, 0.3, 9), 12, 9)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeClient(c, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Stop() }) // srv is rebound on restart; stop the live one

		rc := NewRemoteClient("sta", srv.Addr())
		t.Cleanup(func() { rc.Close() })

		cfg := smallConfig(21)
		cfg.Rounds = 3
		cfg.EpochsPerRound = 1
		cfg.Codec = CodecQ8
		var sentAt []uint64 // cumulative wire bytes at each round boundary
		cfg.OnRound = func(stat RoundStat, _ []float64) {
			sent, _ := rc.Traffic()
			sentAt = append(sentAt, sent)
			if stat.Round == 0 {
				srv = between(c, srv, rc)
			}
		}
		co, err := NewCoordinator(smallSpec(), []ClientHandle{rc}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := co.Run()
		if err != nil {
			t.Fatalf("federation across the restart failed: %v", err)
		}
		for _, rs := range res.Rounds {
			if len(rs.Participants) != 1 || len(rs.Errors) != 0 {
				t.Fatalf("round %d: participants %v, errors %v — restart must be transparent",
					rs.Round, rs.Participants, rs.Errors)
			}
		}
		perRound := make([]uint64, len(sentAt))
		for i, s := range sentAt {
			perRound[i] = s
			if i > 0 {
				perRound[i] -= sentAt[i-1]
			}
		}
		return res.Global, perRound
	}

	restarted, restartBytes := run(func(c *Client, srv *ClientServer, rc *RemoteClient) *ClientServer {
		addr := srv.Addr()
		srv.Stop()
		again, err := ServeClient(c, addr)
		if err != nil {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		return again
	})

	control, controlBytes := run(func(c *Client, srv *ClientServer, rc *RemoteClient) *ClientServer {
		rc.Close() // explicit reset: the documented reconnect semantics
		return srv
	})

	if len(restarted) != len(control) {
		t.Fatalf("dim mismatch: %d vs %d", len(restarted), len(control))
	}
	for i := range restarted {
		if math.Float64bits(restarted[i]) != math.Float64bits(control[i]) {
			t.Fatalf("coordinate %d differs after restart: %v != control %v",
				i, restarted[i], control[i])
		}
	}

	// The measured downlink pins the codec schedule: round 1 ships a
	// full-frame fallback (the stale delta reference was discarded) and
	// round 2 shrinks back to delta coding on both variants.
	if len(restartBytes) != 3 || len(controlBytes) != 3 {
		t.Fatalf("want 3 per-round byte counts, got %v and %v", restartBytes, controlBytes)
	}
	// The restart variant may additionally count a doomed partial write on
	// the dead connection before the re-dial, so it is a lower bound, not
	// an equality.
	if restartBytes[1] < controlBytes[1] {
		t.Fatalf("restart round 1 sent %d bytes, below the explicit-reset fallback frame of %d — no full-frame fallback happened",
			restartBytes[1], controlBytes[1])
	}
	if restartBytes[2] >= restartBytes[1] {
		t.Fatalf("round 2 (%d B) should resume delta coding below the round-1 fallback (%d B)",
			restartBytes[2], restartBytes[1])
	}
	if controlBytes[2] != restartBytes[2] {
		t.Fatalf("delta rounds diverge: restart %d B vs control %d B", restartBytes[2], controlBytes[2])
	}
}
