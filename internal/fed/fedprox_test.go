package fed

import (
	"errors"
	"math"
	"testing"

	"github.com/evfed/evfed/internal/nn"
)

func TestFedProxPullsTowardGlobal(t *testing.T) {
	// With a very large μ the local solution must stay glued to the
	// broadcast global weights; with μ = 0 it drifts freely.
	c1, err := NewClient("a", smallSpec(), clientSeries(150, 0, 1), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient("b", smallSpec(), clientSeries(150, 0, 1), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.Build(smallSpec(), 9)
	if err != nil {
		t.Fatal(err)
	}
	global := m.WeightsVector()

	drift := func(c *Client, mu float64) float64 {
		u, err := c.Train(global, LocalTrainConfig{
			Epochs: 2, BatchSize: 16, LearningRate: 0.01,
			ProximalMu: mu,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range u.Weights {
			d := u.Weights[i] - global[i]
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	free := drift(c1, 0)
	glued := drift(c2, 100)
	if glued >= free/3 {
		t.Fatalf("FedProx did not restrain drift: μ=100 drift %v vs free drift %v", glued, free)
	}
}

func TestFedProxFederationConverges(t *testing.T) {
	clients := makeClients(t, 3)
	cfg := smallConfig(71)
	cfg.ProximalMu = 0.01
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[len(res.Rounds)-1].MeanLoss >= res.Rounds[0].MeanLoss {
		t.Fatalf("FedProx federation did not converge: %+v", res.Rounds)
	}
}

func TestFedProxValidation(t *testing.T) {
	clients := makeClients(t, 1)
	bad := smallConfig(1)
	bad.ProximalMu = -1
	if _, err := NewCoordinator(smallSpec(), clients, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestProxConfigValidationInFit(t *testing.T) {
	m, err := nn.Build(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []nn.Seq{{{0.1}, {0.2}}}
	// Pad the window to seqLen 12 for the small spec input (1 feature).
	in := make(nn.Seq, 12)
	for i := range in {
		in[i] = []float64{0.1}
	}
	inputs = []nn.Seq{in}
	targets := []nn.Seq{{{0.5}}}

	cfg := nn.DefaultTrainConfig(1, 1)
	cfg.ProxMu = -1
	if _, err := nn.Fit(m, inputs, targets, cfg); !errors.Is(err, nn.ErrBadConfig) {
		t.Fatalf("negative mu: want ErrBadConfig, got %v", err)
	}
	cfg2 := nn.DefaultTrainConfig(1, 1)
	cfg2.ProxMu = 0.1
	cfg2.ProxRef = []float64{1, 2, 3} // wrong length
	if _, err := nn.Fit(m, inputs, targets, cfg2); !errors.Is(err, nn.ErrShape) {
		t.Fatalf("bad ref: want ErrShape, got %v", err)
	}
}
