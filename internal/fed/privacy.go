package fed

import (
	"fmt"
	"math"

	"github.com/evfed/evfed/internal/rng"
)

// Privacy configures client-side update privatization. The paper's
// privacy argument is architectural (raw data never leaves a station),
// but shared weight updates can still leak training data through model
// inversion; the standard hardening is the Gaussian mechanism applied to
// the clipped update delta before it is sent:
//
//	delta  = w_local − w_global
//	delta ← delta · min(1, ClipNorm / ‖delta‖₂)
//	delta ← delta + N(0, NoiseStd²) per coordinate
//
// The coordinator then aggregates privatized deltas exactly as before.
// Calibrating (ε, δ) guarantees from (ClipNorm, NoiseStd, rounds) follows
// the usual moments-accountant analysis and is outside this package's
// scope; the mechanism itself is what the privacy/utility ablation
// exercises.
type Privacy struct {
	// ClipNorm bounds the L2 norm of the update delta (must be > 0 when
	// NoiseStd > 0, otherwise noise is unbounded relative to sensitivity).
	ClipNorm float64
	// NoiseStd is the per-coordinate Gaussian noise scale.
	NoiseStd float64
}

// Enabled reports whether any privatization is configured.
func (p Privacy) Enabled() bool { return p.ClipNorm > 0 || p.NoiseStd > 0 }

func (p Privacy) validate() error {
	if p.ClipNorm < 0 || p.NoiseStd < 0 {
		return fmt.Errorf("%w: privacy %+v", ErrBadConfig, p)
	}
	if p.NoiseStd > 0 && p.ClipNorm <= 0 {
		return fmt.Errorf("%w: noise without clipping has unbounded sensitivity", ErrBadConfig)
	}
	return nil
}

// privatize applies the mechanism to weights in place, given the global
// weights the local training started from.
func (p Privacy) privatize(weights, global []float64, r *rng.Source) error {
	if err := p.validate(); err != nil {
		return err
	}
	if !p.Enabled() {
		return nil
	}
	if len(weights) != len(global) {
		return fmt.Errorf("%w: weights %d vs global %d", ErrBadConfig, len(weights), len(global))
	}
	delta := make([]float64, len(weights))
	var norm float64
	for i := range weights {
		delta[i] = weights[i] - global[i]
		norm += delta[i] * delta[i]
	}
	norm = math.Sqrt(norm)
	scale := 1.0
	if p.ClipNorm > 0 && norm > p.ClipNorm {
		scale = p.ClipNorm / norm
	}
	for i := range weights {
		d := delta[i] * scale
		if p.NoiseStd > 0 {
			d += r.Normal(0, p.NoiseStd)
		}
		weights[i] = global[i] + d
	}
	return nil
}
