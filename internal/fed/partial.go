package fed

import (
	"fmt"

	"github.com/evfed/evfed/internal/mat"
)

// PartialKind identifies the form of a partial aggregate an edge
// aggregator folds for its upstream node. The kind is dictated by the
// root's aggregation rule and travels in every Train request (stations
// ignore it), so the whole tree always folds under one rule.
type PartialKind uint8

const (
	// PartialWeighted is a sample-weighted partial sum (FedAvg): the edge
	// ships its Neumaier-compensated accumulator (hi + compensation), so
	// the root's merged fold matches a flat single-coordinator fold at
	// full float64 precision.
	PartialWeighted PartialKind = iota
	// PartialUniform is the equally-weighted variant (uniform mean).
	PartialUniform
	// PartialHeld forwards every downstream update vector unfolded.
	// Order statistics (median, trimmed mean) are not decomposable into
	// per-edge folds, so the edge acts as a gather relay and the root
	// reduces the full column set exactly as a flat coordinator would.
	PartialHeld
)

func (k PartialKind) validate() error {
	if k > PartialHeld {
		return fmt.Errorf("%w: partial kind %d", ErrBadConfig, uint8(k))
	}
	return nil
}

// partialKindFor maps an aggregation rule to the partial form edges must
// produce for it. Unknown (external) aggregators map to PartialHeld; the
// root rejects them for hierarchical rounds anyway (the buffered fallback
// cannot merge partials), so the value is never trusted blindly.
func partialKindFor(agg Aggregator) PartialKind {
	switch agg.(type) {
	case MeanAggregator, nil:
		return PartialWeighted
	case UniformAggregator:
		return PartialUniform
	default:
		return PartialHeld
	}
}

// Partial is one aggregation node's contribution to its parent's round: a
// partial aggregate over the node's downstream participants plus the
// bookkeeping the parent needs for weighting, diagnostics and byte
// accounting. It is the in-memory form of the wire's TrainPartial frame.
type Partial struct {
	// NodeID identifies the edge that produced the partial.
	NodeID string
	// Kind selects which payload fields below are meaningful.
	Kind PartialKind
	// Dim is the weight-vector dimension.
	Dim int

	// WeightTotal is the summed FedAvg weight of the folded updates
	// (sample counts for PartialWeighted, participant count for
	// PartialUniform). Integer-valued, so it is exact in float64 and the
	// root's total matches a flat fold bit-for-bit.
	WeightTotal float64
	// Count is the number of folded (or held) downstream updates.
	Count int
	// AccHi and AccLo are the Neumaier-compensated partial sum: high word
	// and accumulated compensation. Shipped as raw float64 so the root
	// merge is lossless regardless of the tree's wire codec.
	AccHi, AccLo []float64
	// Held carries the unfolded downstream update vectors (PartialHeld),
	// in the edge's client order.
	Held [][]float64

	// LeafParticipants and LeafDropped count the stations underneath this
	// node that contributed to / dropped out of the round.
	LeafParticipants int
	LeafDropped      int
	// SampleSum and LossSum carry the participant sample total and the
	// sample-weighted loss sum, so the root's MeanLoss spans the whole
	// tree.
	SampleSum int
	LossSum   float64
	// ClientSeconds sums downstream client-reported local training time.
	ClientSeconds float64
	// BytesDown and BytesUp are the node's own downstream round traffic
	// (modeled exact frame sizes, like RoundStat's), so multi-tier byte
	// accounting is visible at the root.
	BytesDown, BytesUp uint64
}

// PartialTrainer is implemented by client handles that are themselves
// aggregation nodes: instead of one local update, Train-ing them yields a
// partial aggregate over their own downstream round. The coordinator's
// round engine dispatches on this interface, so edges and stations mix
// freely under one parent.
type PartialTrainer interface {
	// TrainPartial broadcasts the global weights to the node's downstream
	// clients, runs one round under the node's own deadline and
	// concurrency bounds, and returns the folded partial.
	TrainPartial(global []float64, cfg LocalTrainConfig) (Partial, error)
}

// partialStream is the optional streaming-aggregator extension for
// hierarchical rounds: merging downstream partials into the round fold
// and exporting the fold as a partial for the node's own parent. The
// built-in aggregators implement it; the buffered fallback for external
// aggregators does not (a one-shot Aggregate cannot merge pre-folded
// sums), so hierarchical rounds reject custom rules with ErrBadConfig.
type partialStream interface {
	StreamAggregator
	// AddPartial folds one downstream node's partial into the round.
	AddPartial(p *Partial) error
	// ExportPartial drains the round into p (reusing p's buffers) instead
	// of finishing it into a weight vector.
	ExportPartial(p *Partial) error
}

func (s *meanStream) kind() PartialKind {
	if s.weighted {
		return PartialWeighted
	}
	return PartialUniform
}

// AddPartial merges a folded partial: Neumaier-add the partial's high
// word into the accumulator, then fold its compensation straight into
// ours. Exact weight totals (integer-valued float64) keep the divisor
// identical to a flat fold's.
func (s *meanStream) AddPartial(p *Partial) error {
	if p.Kind != s.kind() {
		return fmt.Errorf("%w: node %s sent partial kind %d, aggregator %s wants %d",
			ErrBadConfig, p.NodeID, p.Kind, s.name, s.kind())
	}
	if p.Dim != s.dim || len(p.AccHi) != s.dim || len(p.AccLo) != s.dim {
		return fmt.Errorf("%w: node %s partial dim %d != %d",
			ErrBadConfig, p.NodeID, p.Dim, s.dim)
	}
	if p.Count <= 0 || p.WeightTotal <= 0 {
		return fmt.Errorf("%w: node %s partial folds %d clients (weight %v)",
			ErrBadConfig, p.NodeID, p.Count, p.WeightTotal)
	}
	mat.AxpyComp(1, s.acc, s.comp, p.AccHi)
	mat.AddVec(s.comp, p.AccLo)
	s.total += p.WeightTotal
	s.count += p.Count
	return nil
}

// ExportPartial implements partialStream for the mean family.
func (s *meanStream) ExportPartial(p *Partial) error {
	if s.count == 0 {
		return ErrNoClients
	}
	p.Kind = s.kind()
	p.Dim = s.dim
	p.WeightTotal = s.total
	p.Count = s.count
	p.AccHi = append(p.AccHi[:0], s.acc...)
	p.AccLo = append(p.AccLo[:0], s.comp...)
	p.Held = p.Held[:0]
	return nil
}

// AddPartial merges a held partial: the relayed update vectors join the
// round's column set in arrival order, so a contiguous station→edge
// assignment reproduces the flat coordinator's fold order exactly.
func (s *rankStream) AddPartial(p *Partial) error {
	if p.Kind != PartialHeld {
		return fmt.Errorf("%w: node %s sent partial kind %d, rank aggregator %s wants held vectors",
			ErrBadConfig, p.NodeID, p.Kind, s.name)
	}
	if len(p.Held) == 0 {
		return fmt.Errorf("%w: node %s held partial is empty", ErrBadConfig, p.NodeID)
	}
	for _, w := range p.Held {
		if len(w) != s.dim {
			return fmt.Errorf("%w: node %s held vector dim %d != %d",
				ErrBadConfig, p.NodeID, len(w), s.dim)
		}
		s.held = append(s.held, w)
	}
	return nil
}

// ExportPartial implements partialStream for the rank family: the edge
// cannot pre-fold an order statistic, so it exports the held vectors.
func (s *rankStream) ExportPartial(p *Partial) error {
	defer func() {
		for i := range s.held {
			s.held[i] = nil
		}
		s.held = s.held[:0]
	}()
	if len(s.held) == 0 {
		return ErrNoClients
	}
	p.Kind = PartialHeld
	p.Dim = s.dim
	p.WeightTotal = float64(len(s.held))
	p.Count = len(s.held)
	p.AccHi = p.AccHi[:0]
	p.AccLo = p.AccLo[:0]
	p.Held = append(p.Held[:0], s.held...)
	return nil
}
