package fed

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP transport turns the in-process federation into a real networked
// deployment: each charging station runs a ClientServer; the coordinator
// holds RemoteClient handles that speak a length-free gob protocol over a
// persistent connection per training call.
//
// Wire protocol (gob streams, one request/response pair per connection):
//
//	coordinator → client:  trainRequest{Hello | Probe | Weights+Config}
//	client → coordinator:  trainResponse{StationID, ModelDim, NumSamples, Update, Err}
//
// Request kinds are selected by explicit markers: trainRequest.Hello asks
// for the station's identity (ID, weight-vector dimension, sample count)
// so the coordinator can validate compatibility before round 1;
// trainRequest.Probe asks for NumSamples only; otherwise the request is a
// full local-training call.
//
// Failure handling: RemoteClient applies a dial timeout, per-call
// read/write deadlines, and bounded exponential-backoff retries for
// transient dial/IO errors. Application errors reported by the station
// (ErrRemote) are never retried. ClientServer tracks every accepted
// connection under its mutex, so Stop cannot race a concurrent accept; on
// Stop, the listener and all in-flight connections are closed and handler
// goroutines are awaited.

// ErrRemote wraps an error string reported by the remote client.
var ErrRemote = errors.New("fed: remote client error")

type trainRequest struct {
	Hello   bool // true = identity/compatibility handshake only
	Probe   bool // true = NumSamples query only
	Weights []float64
	Config  LocalTrainConfig
}

type trainResponse struct {
	StationID  string
	ModelDim   int
	Update     Update
	NumSamples int
	Err        string
}

// HelloInfo is the station identity returned by the Hello handshake.
type HelloInfo struct {
	// StationID is the station's self-reported identifier.
	StationID string
	// ModelDim is the station's weight-vector dimension; the coordinator
	// rejects stations whose dimension differs from the global model's.
	ModelDim int
	// NumSamples is the station's private training-set size.
	NumSamples int
}

// Prober is implemented by client handles that support the Hello
// handshake. The coordinator probes every Prober before round 1 and
// fails fast on model-dimension mismatches instead of discovering them
// as aggregation errors mid-run.
type Prober interface {
	Hello() (HelloInfo, error)
}

// ServerConfig tunes a ClientServer's connection lifecycle.
type ServerConfig struct {
	// RequestTimeout bounds reading one request off an accepted
	// connection and, separately, writing its response — it guards
	// against half-open peers pinning handler goroutines forever.
	// 0 disables the deadlines. It does NOT bound local training time:
	// the write deadline is armed only after training completes.
	RequestTimeout time.Duration
}

// ClientServer exposes a Client over TCP.
type ClientServer struct {
	client *Client
	ln     net.Listener
	scfg   ServerConfig

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeClient starts serving client on addr (e.g. "127.0.0.1:0") with the
// default (deadline-free) server configuration and returns the running
// server. Stop must be called to release the listener.
func ServeClient(client *Client, addr string) (*ClientServer, error) {
	return ServeClientConfig(client, addr, ServerConfig{})
}

// ServeClientConfig starts serving client on addr with explicit lifecycle
// configuration. Stop must be called to release the listener.
func ServeClientConfig(client *Client, addr string, scfg ServerConfig) (*ClientServer, error) {
	if scfg.RequestTimeout < 0 {
		return nil, fmt.Errorf("%w: request timeout %v", ErrBadConfig, scfg.RequestTimeout)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: listen %s: %w", addr, err)
	}
	s := &ClientServer{client: client, ln: ln, scfg: scfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *ClientServer) Addr() string { return s.ln.Addr().String() }

// Stop closes the listener and every in-flight connection, then waits for
// the accept loop and all handler goroutines to exit. Handlers blocked on
// network IO are unblocked by the connection close; a handler mid-training
// finishes its (now unanswerable) local computation before exiting.
func (s *ClientServer) Stop() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.ln.Close()
		for c := range s.conns {
			c.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *ClientServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			// Stop won the race: the server is closed, so the fresh
			// connection is dropped instead of spawning an untracked
			// handler behind Stop's back.
			conn.Close()
			return
		}
		go func() {
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// track registers conn and reserves a handler slot in the WaitGroup.
// Both happen under the mutex that Stop takes before wg.Wait, so either
// the connection is fully tracked before Stop waits, or Stop already
// closed and the caller must drop the connection — wg.Add can never race
// wg.Wait.
func (s *ClientServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.wg.Add(1)
	s.conns[conn] = struct{}{}
	return true
}

func (s *ClientServer) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

func (s *ClientServer) handle(conn net.Conn) {
	if s.scfg.RequestTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.scfg.RequestTimeout))
	}
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req trainRequest
	if err := dec.Decode(&req); err != nil {
		return // malformed or timed-out request; drop the connection
	}
	resp := trainResponse{StationID: s.client.id}
	switch {
	case req.Hello:
		info, err := s.client.Hello()
		resp.ModelDim = info.ModelDim
		resp.NumSamples = info.NumSamples
		if err != nil {
			resp.Err = err.Error()
		}
	case req.Probe:
		n, err := s.client.NumSamples()
		resp.NumSamples = n
		if err != nil {
			resp.Err = err.Error()
		}
	default:
		u, err := s.client.Train(req.Weights, req.Config)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Update = u
		}
	}
	if s.scfg.RequestTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.scfg.RequestTimeout))
	}
	_ = enc.Encode(&resp) // best effort; coordinator detects broken pipes
}

// RemoteClient is a ClientHandle that reaches a ClientServer over TCP.
// The exported fields tune failure handling and may be adjusted before
// the handle is used; they must not be mutated concurrently with calls.
type RemoteClient struct {
	id   string
	addr string
	// DialTimeout bounds connection establishment per attempt.
	DialTimeout time.Duration
	// WriteTimeout bounds sending one request (the serialized global
	// weight vector). 0 = no deadline.
	WriteTimeout time.Duration
	// ReadTimeout bounds waiting for one Train response, which includes
	// the station's local training time — size it to the slowest
	// acceptable station, not to network latency. 0 = no deadline (the
	// coordinator's round deadline is then the only straggler cutoff).
	ReadTimeout time.Duration
	// ProbeTimeout bounds waiting for Hello/NumSamples responses, which
	// involve no training and should answer immediately; it keeps the
	// coordinator's preflight handshake from hanging on a dead station
	// even when ReadTimeout is unset. 0 = fall back to ReadTimeout.
	ProbeTimeout time.Duration
	// MaxRetries is the number of additional attempts after a transient
	// dial/IO failure. Application errors (ErrRemote) are never retried.
	MaxRetries int
	// RetryBackoff is the sleep before the first retry; it doubles after
	// every failed attempt.
	RetryBackoff time.Duration
}

var _ ClientHandle = (*RemoteClient)(nil)
var _ Prober = (*RemoteClient)(nil)

// NewRemoteClient builds a handle for the client served at addr, with
// production-leaning defaults: 5s dial timeout, 30s write deadline, 10m
// training read deadline, 10s probe deadline, and 2 retries starting at
// a 200ms backoff.
func NewRemoteClient(id, addr string) *RemoteClient {
	return &RemoteClient{
		id:           id,
		addr:         addr,
		DialTimeout:  5 * time.Second,
		WriteTimeout: 30 * time.Second,
		ReadTimeout:  10 * time.Minute,
		ProbeTimeout: 10 * time.Second,
		MaxRetries:   2,
		RetryBackoff: 200 * time.Millisecond,
	}
}

// ID implements ClientHandle.
func (r *RemoteClient) ID() string { return r.id }

// Hello performs the identity/compatibility handshake with the station.
func (r *RemoteClient) Hello() (HelloInfo, error) {
	resp, err := r.roundTrip(trainRequest{Hello: true})
	if err != nil {
		return HelloInfo{}, err
	}
	return HelloInfo{
		StationID:  resp.StationID,
		ModelDim:   resp.ModelDim,
		NumSamples: resp.NumSamples,
	}, nil
}

// NumSamples implements ClientHandle.
func (r *RemoteClient) NumSamples() (int, error) {
	resp, err := r.roundTrip(trainRequest{Probe: true})
	if err != nil {
		return 0, err
	}
	return resp.NumSamples, nil
}

// Train implements ClientHandle.
func (r *RemoteClient) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	resp, err := r.roundTrip(trainRequest{Weights: global, Config: cfg})
	if err != nil {
		return Update{}, err
	}
	return resp.Update, nil
}

// roundTrip performs one call with bounded retries. Retrying a Train call
// is safe: the station reinstalls the broadcast weights on every call, so
// a duplicate attempt recomputes the same deterministic update.
func (r *RemoteClient) roundTrip(req trainRequest) (*trainResponse, error) {
	attempts := 1 + r.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	backoff := r.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := r.call(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if errors.Is(err, ErrRemote) {
			// The station answered and reported an application error;
			// retrying would only repeat it.
			return nil, err
		}
	}
	if attempts > 1 {
		return nil, fmt.Errorf("fed: %s: %d attempts failed: %w", r.addr, attempts, lastErr)
	}
	return nil, lastErr
}

// call performs a single dial/send/receive cycle with per-phase deadlines.
func (r *RemoteClient) call(req trainRequest) (*trainResponse, error) {
	conn, err := net.DialTimeout("tcp", r.addr, r.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("fed: dial %s: %w", r.addr, err)
	}
	defer conn.Close()
	if r.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(r.WriteTimeout))
	}
	if err := gob.NewEncoder(conn).Encode(&req); err != nil {
		return nil, fmt.Errorf("fed: send to %s: %w", r.addr, err)
	}
	readTimeout := r.ReadTimeout
	if (req.Hello || req.Probe) && r.ProbeTimeout > 0 {
		readTimeout = r.ProbeTimeout
	}
	if readTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(readTimeout))
	}
	var resp trainResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("fed: receive from %s: %w", r.addr, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("%w: %s: %s", ErrRemote, r.id, resp.Err)
	}
	return &resp, nil
}
