package fed

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP transport turns the in-process federation into a real networked
// deployment: each charging station runs a ClientServer; the coordinator
// holds RemoteClient handles that speak a length-free gob protocol over a
// persistent connection per training call.
//
// Wire protocol (gob streams):
//
//	coordinator → client:  trainRequest{Weights, Config}
//	client → coordinator:  trainResponse{Update, Err}
//
// A NumSamples query uses Config.Epochs == 0 as the probe marker.

// ErrRemote wraps an error string reported by the remote client.
var ErrRemote = errors.New("fed: remote client error")

type trainRequest struct {
	Probe   bool // true = NumSamples query only
	Weights []float64
	Config  LocalTrainConfig
}

type trainResponse struct {
	Update     Update
	NumSamples int
	Err        string
}

// ClientServer exposes a Client over TCP.
type ClientServer struct {
	client *Client
	ln     net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ServeClient starts serving client on addr (e.g. "127.0.0.1:0") and
// returns the running server. Stop must be called to release the listener.
func ServeClient(client *Client, addr string) (*ClientServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: listen %s: %w", addr, err)
	}
	s := &ClientServer{client: client, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *ClientServer) Addr() string { return s.ln.Addr().String() }

// Stop closes the listener and waits for in-flight connections to finish.
func (s *ClientServer) Stop() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.ln.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *ClientServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *ClientServer) handle(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req trainRequest
	if err := dec.Decode(&req); err != nil {
		return // malformed request; drop the connection
	}
	var resp trainResponse
	if req.Probe {
		n, err := s.client.NumSamples()
		resp.NumSamples = n
		if err != nil {
			resp.Err = err.Error()
		}
	} else {
		u, err := s.client.Train(req.Weights, req.Config)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Update = u
		}
	}
	_ = enc.Encode(&resp) // best effort; coordinator detects broken pipes
}

// RemoteClient is a ClientHandle that reaches a ClientServer over TCP.
type RemoteClient struct {
	id   string
	addr string
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
}

var _ ClientHandle = (*RemoteClient)(nil)

// NewRemoteClient builds a handle for the client served at addr.
func NewRemoteClient(id, addr string) *RemoteClient {
	return &RemoteClient{id: id, addr: addr, DialTimeout: 5 * time.Second}
}

// ID implements ClientHandle.
func (r *RemoteClient) ID() string { return r.id }

// NumSamples implements ClientHandle.
func (r *RemoteClient) NumSamples() (int, error) {
	resp, err := r.roundTrip(trainRequest{Probe: true})
	if err != nil {
		return 0, err
	}
	return resp.NumSamples, nil
}

// Train implements ClientHandle.
func (r *RemoteClient) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	resp, err := r.roundTrip(trainRequest{Weights: global, Config: cfg})
	if err != nil {
		return Update{}, err
	}
	return resp.Update, nil
}

func (r *RemoteClient) roundTrip(req trainRequest) (*trainResponse, error) {
	conn, err := net.DialTimeout("tcp", r.addr, r.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("fed: dial %s: %w", r.addr, err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(&req); err != nil {
		return nil, fmt.Errorf("fed: send to %s: %w", r.addr, err)
	}
	var resp trainResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("fed: receive from %s: %w", r.addr, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("%w: %s: %s", ErrRemote, r.id, resp.Err)
	}
	return &resp, nil
}
