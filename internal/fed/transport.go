package fed

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/evfed/evfed/internal/fed/wire"
	"github.com/evfed/evfed/internal/rng"
)

// The TCP transport turns the in-process federation into a real networked
// deployment: each charging station runs a ClientServer; the coordinator
// holds RemoteClient handles that speak the binary frame protocol of
// internal/fed/wire over a persistent connection.
//
// Wire protocol (length-prefixed binary frames, many request/response
// pairs per connection):
//
//	coordinator → station:  Hello | Probe | Train{config, weights}
//	station → coordinator:  HelloOK | ProbeOK | TrainOK{update} | Error
//
// Every frame header carries the protocol version; the Hello handshake
// negotiates it — a station receiving a frame from a different protocol
// revision answers with a typed Error frame carrying its own revision and
// closes, so skewed peers fail fast with ErrProtocolMismatch instead of
// exchanging garbage. A peer that is not speaking this protocol at all
// (e.g. a legacy gob coordinator) fails the magic check on its first
// frame and the connection is dropped immediately; a legacy gob *station*
// never answers the binary Hello, which surfaces as ErrHello under the
// probe deadline.
//
// Connections are persistent: a RemoteClient keeps its connection across
// rounds and transparently re-dials when a reused connection has gone
// stale (server restart, idle reap by ServerConfig.RequestTimeout). The
// int8 delta codec's downlink reference is connection-scoped state held
// by BOTH ends and committed at the same message boundary (TrainOK), so
// a reconnect — which resets the state on both sides at once — can never
// make coordinator and station quantize against different references.
//
// Failure handling: RemoteClient applies a dial timeout, per-call
// read/write deadlines, and bounded exponential-backoff retries for
// transient dial/IO errors. Application errors reported by the station
// (ErrRemote) are never retried and leave the connection open; transport
// errors close it. ClientServer tracks every accepted connection under
// its mutex, so Stop cannot race a concurrent accept; on Stop, the
// listener and all in-flight connections are closed and handler
// goroutines are awaited.

// ErrRemote wraps an error string reported by the remote client.
var ErrRemote = errors.New("fed: remote client error")

// ErrProtocolMismatch marks an affirmative protocol incompatibility: the
// peer answered with a different protocol revision, or with bytes that
// are not this protocol at all. It is a configuration bug (like
// ErrDimMismatch), so the coordinator's preflight treats it as fatal even
// under TolerateClientErrors.
var ErrProtocolMismatch = errors.New("fed: station speaks an incompatible federation protocol")

// ErrHello marks a failed Hello handshake with a silent peer: the station
// accepted the connection but never answered the binary Hello before the
// probe deadline (a legacy gob station blocked mid-decode, or a hung
// peer). Unlike ErrProtocolMismatch this is not affirmative, so tolerant
// federations treat it like any unreachable station.
var ErrHello = errors.New("fed: Hello handshake got no response (legacy gob station, or hung peer)")

// HelloInfo is the peer identity returned by the Hello handshake.
type HelloInfo struct {
	// StationID is the peer's self-reported identifier.
	StationID string
	// ModelDim is the peer's weight-vector dimension; the coordinator
	// rejects peers whose dimension differs from the global model's.
	ModelDim int
	// NumSamples is the peer's private training-set size (an edge reports
	// its subtree total).
	NumSamples int
	// Role reports whether the peer is a leaf station (RoleStation) or an
	// aggregation node fronting its own subtree (RoleAggregate). Peers
	// predating the hierarchy omit the byte and parse as RoleStation.
	Role uint8
}

// Prober is implemented by client handles that support the Hello
// handshake. The coordinator probes every Prober before round 1 and
// fails fast on model-dimension mismatches instead of discovering them
// as aggregation errors mid-run.
type Prober interface {
	Hello() (HelloInfo, error)
}

// ServerConfig tunes a ClientServer's connection lifecycle and codec
// policy.
type ServerConfig struct {
	// RequestTimeout bounds waiting for one complete request frame on an
	// accepted connection and, separately, writing its response — it
	// guards against half-open peers pinning handler goroutines forever,
	// and doubles as the idle reap for persistent connections (a
	// coordinator whose connection was reaped between rounds transparently
	// re-dials). 0 disables the deadlines. It does NOT bound local
	// training time: the write deadline is armed only after training
	// completes.
	RequestTimeout time.Duration
	// Codec is the station's uplink compression floor: updates are
	// encoded with the more compressed of this and what the coordinator's
	// request asked for (vector payloads are self-describing, so the
	// coordinator decodes whatever arrives). The zero value defers
	// entirely to the coordinator. A bandwidth-constrained station uses
	// this to force compression regardless of coordinator configuration.
	Codec Codec
	// WrapConn, if set, wraps every accepted connection before it is
	// tracked — the listen-side seam the chaos fault injector plugs into
	// (chaos.Injector.ConnWrapper). Nil costs nothing.
	WrapConn func(net.Conn) net.Conn
}

// servedNode is what the TCP server needs from the peer it fronts: the
// Hello/Probe identity calls plus one respondTrain that answers a Train
// request with a response frame builder. A leaf Client answers MsgTrainOK
// with its update; an Edge answers MsgTrainPartial with its subtree's
// partial aggregate — the server's framing, session and delta-reference
// machinery is identical for both roles.
type servedNode interface {
	nodeID() string
	hello() (HelloInfo, error)
	numSamples() (int, error)
	// respondTrain runs the peer's training for one parsed Train request
	// (weights is the decoded broadcast, owned by the session) and
	// returns the response type and payload builder. An error is an
	// application error: reported as ErrCodeApp, connection kept.
	respondTrain(tr wire.Train, weights []float64, scfg ServerConfig) (wire.MsgType, func([]byte) ([]byte, error), error)
}

// leafStation is what the station-side server needs from the handle it
// fronts: local training plus the Hello probe. *Client satisfies it, as
// does a MaliciousClient wrapping one — serving the wrapper sends its
// corrupted updates through the identical wire path.
type leafStation interface {
	ClientHandle
	Prober
}

// clientPeer adapts a leaf station to the server.
type clientPeer struct{ c leafStation }

func (p clientPeer) nodeID() string            { return p.c.ID() }
func (p clientPeer) hello() (HelloInfo, error) { return p.c.Hello() }
func (p clientPeer) numSamples() (int, error)  { return p.c.NumSamples() }

func (p clientPeer) respondTrain(tr wire.Train, weights []float64, scfg ServerConfig) (wire.MsgType, func([]byte) ([]byte, error), error) {
	cfg := LocalTrainConfig{
		Epochs:       tr.Epochs,
		BatchSize:    tr.BatchSize,
		LearningRate: tr.LearningRate,
		Workers:      tr.Workers,
		Round:        tr.Round,
		Privacy:      Privacy{ClipNorm: tr.PrivacyClip, NoiseStd: tr.PrivacyNoise},
		ProximalMu:   tr.ProximalMu,
		// The wire performs the real encoding below; the client must not
		// additionally simulate it.
		Codec: CodecNone,
	}
	u, err := p.c.Train(weights, cfg)
	if err != nil {
		return 0, nil, err
	}
	upCodec := maxVecCodec(tr.UpdateCodec, scfg.Codec.upVec())
	return wire.MsgTrainOK, func(b []byte) ([]byte, error) {
		b, err := wire.AppendTrainOK(b, wire.TrainOK{
			StationID:    u.ClientID,
			NumSamples:   u.NumSamples,
			TrainSeconds: u.TrainSeconds,
			FinalLoss:    u.FinalLoss,
		})
		if err != nil {
			return nil, err
		}
		// Uplink delta reference is this round's broadcast as this
		// station reconstructed it.
		return wire.AppendVector(b, upCodec, u.Weights, weights, nil)
	}, nil
}

// edgePeer adapts an Edge aggregator to the server.
type edgePeer struct{ e *Edge }

func (p edgePeer) nodeID() string            { return p.e.id }
func (p edgePeer) hello() (HelloInfo, error) { return p.e.Hello() }
func (p edgePeer) numSamples() (int, error)  { return p.e.NumSamples() }

func (p edgePeer) respondTrain(tr wire.Train, weights []float64, scfg ServerConfig) (wire.MsgType, func([]byte) ([]byte, error), error) {
	cfg := LocalTrainConfig{
		Epochs:       tr.Epochs,
		BatchSize:    tr.BatchSize,
		LearningRate: tr.LearningRate,
		Workers:      tr.Workers,
		Round:        tr.Round,
		Privacy:      Privacy{ClipNorm: tr.PrivacyClip, NoiseStd: tr.PrivacyNoise},
		ProximalMu:   tr.ProximalMu,
		// The edge applies its own downstream codec; partial uplinks are
		// always raw float64 regardless of tr.UpdateCodec.
		Codec:       CodecNone,
		PartialKind: PartialKind(tr.PartialKind),
	}
	part, err := p.e.TrainPartial(weights, cfg)
	if err != nil {
		// Any edge failure — including a fully-dropped subtree — is an
		// application error: a tolerant root drops just this subtree and
		// the round completes on the surviving edges.
		return 0, nil, err
	}
	return wire.MsgTrainPartial, func(b []byte) ([]byte, error) {
		return wire.AppendTrainPartial(b, wire.TrainPartial{
			NodeID:           part.NodeID,
			Kind:             uint8(part.Kind),
			LeafParticipants: part.LeafParticipants,
			LeafDropped:      part.LeafDropped,
			SampleSum:        uint64(part.SampleSum),
			Count:            part.Count,
			LossSum:          part.LossSum,
			ClientSeconds:    part.ClientSeconds,
			BytesDown:        part.BytesDown,
			BytesUp:          part.BytesUp,
			Dim:              part.Dim,
			WeightTotal:      part.WeightTotal,
			Hi:               part.AccHi,
			Lo:               part.AccLo,
			Held:             part.Held,
		})
	}, nil
}

// ClientServer exposes an aggregation peer — a leaf Client (ServeClient)
// or an Edge (ServeEdge) — over TCP.
type ClientServer struct {
	peer servedNode
	ln   net.Listener
	scfg ServerConfig

	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
	accepted int // total accepted connections (tests observe reuse)
	wg       sync.WaitGroup
}

// ServeClient starts serving client on addr (e.g. "127.0.0.1:0") with the
// default (deadline-free, coordinator-driven codec) server configuration
// and returns the running server. Stop must be called to release the
// listener.
func ServeClient(client *Client, addr string) (*ClientServer, error) {
	return ServeClientConfig(client, addr, ServerConfig{})
}

// ServeClientConfig starts serving client on addr with explicit lifecycle
// configuration. Stop must be called to release the listener.
func ServeClientConfig(client *Client, addr string, scfg ServerConfig) (*ClientServer, error) {
	return servePeer(clientPeer{c: client}, addr, scfg)
}

// ServeEdge starts serving an edge aggregator on addr: the same binary
// protocol as a station, answering Train requests with MsgTrainPartial
// frames. Stop must be called to release the listener.
func ServeEdge(e *Edge, addr string, scfg ServerConfig) (*ClientServer, error) {
	return servePeer(edgePeer{e: e}, addr, scfg)
}

func servePeer(peer servedNode, addr string, scfg ServerConfig) (*ClientServer, error) {
	if scfg.RequestTimeout < 0 {
		return nil, fmt.Errorf("%w: request timeout %v", ErrBadConfig, scfg.RequestTimeout)
	}
	if err := scfg.Codec.validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: listen %s: %w", addr, err)
	}
	s := &ClientServer{peer: peer, ln: ln, scfg: scfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *ClientServer) Addr() string { return s.ln.Addr().String() }

// Stop closes the listener and every in-flight connection, then waits for
// the accept loop and all handler goroutines to exit. Handlers blocked on
// network IO are unblocked by the connection close; a handler mid-training
// finishes its (now unanswerable) local computation before exiting.
func (s *ClientServer) Stop() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.ln.Close()
		for c := range s.conns {
			c.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *ClientServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.scfg.WrapConn != nil {
			conn = s.scfg.WrapConn(conn)
		}
		if !s.track(conn) {
			// Stop won the race: the server is closed, so the fresh
			// connection is dropped instead of spawning an untracked
			// handler behind Stop's back.
			conn.Close()
			return
		}
		go func() {
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// track registers conn and reserves a handler slot in the WaitGroup.
// Both happen under the mutex that Stop takes before wg.Wait, so either
// the connection is fully tracked before Stop waits, or Stop already
// closed and the caller must drop the connection — wg.Add can never race
// wg.Wait.
func (s *ClientServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.wg.Add(1)
	s.conns[conn] = struct{}{}
	s.accepted++
	return true
}

func (s *ClientServer) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

// acceptedConns reports how many connections the server has accepted
// (persistent-connection tests observe reuse through it).
func (s *ClientServer) acceptedConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted
}

// session is one connection's protocol state: the reconstructed broadcast
// the delta codec quantizes against, plus reusable decode scratch. It
// dies with the connection on both ends simultaneously.
type session struct {
	global []float64 // last committed broadcast reconstruction (delta reference)
	spare  []float64 // decode target, swapped with global on commit
}

// handle serves one persistent connection: many request/response pairs
// until the peer closes, a deadline reaps it, or a protocol error makes
// further framing meaningless.
func (s *ClientServer) handle(conn net.Conn) {
	wc := wire.NewConn(conn)
	var sess session
	for {
		if s.scfg.RequestTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.scfg.RequestTimeout))
		}
		fr, err := wc.ReadFrame()
		if err != nil {
			// EOF (peer done), idle/half-open timeout, or not our
			// protocol (e.g. a legacy gob coordinator fails the magic
			// check): drop the connection.
			return
		}
		if fr.Version != wire.Version {
			// Version negotiation: tell the skewed peer which revision
			// this station speaks, then close.
			s.respondError(wc, conn, wire.ErrorMsg{
				Code:        wire.ErrCodeVersion,
				PeerVersion: wire.Version,
				Text:        fmt.Sprintf("station %s speaks protocol v%d, got v%d", s.peer.nodeID(), wire.Version, fr.Version),
			})
			return
		}
		switch fr.Type {
		case wire.MsgHello:
			info, herr := s.peer.hello()
			if herr != nil {
				s.respondError(wc, conn, wire.ErrorMsg{Code: wire.ErrCodeApp, PeerVersion: wire.Version, Text: herr.Error()})
				continue
			}
			s.respond(wc, conn, wire.MsgHelloOK, func(b []byte) ([]byte, error) {
				return wire.AppendHelloOK(b, wire.HelloOK{
					StationID:  info.StationID,
					ModelDim:   info.ModelDim,
					NumSamples: info.NumSamples,
					Role:       info.Role,
				})
			})
		case wire.MsgProbe:
			n, perr := s.peer.numSamples()
			if perr != nil {
				s.respondError(wc, conn, wire.ErrorMsg{Code: wire.ErrCodeApp, PeerVersion: wire.Version, Text: perr.Error()})
				continue
			}
			s.respond(wc, conn, wire.MsgProbeOK, func(b []byte) ([]byte, error) {
				return wire.AppendProbeOK(b, wire.ProbeOK{NumSamples: n})
			})
		case wire.MsgTrain:
			if !s.handleTrain(wc, conn, fr.Payload, &sess) {
				return
			}
		default:
			s.respondError(wc, conn, wire.ErrorMsg{
				Code:        wire.ErrCodeBadRequest,
				PeerVersion: wire.Version,
				Text:        fmt.Sprintf("unexpected message type %d", fr.Type),
			})
			return
		}
	}
}

// handleTrain serves one training request. It reports whether the
// connection is still healthy enough to keep serving.
func (s *ClientServer) handleTrain(wc *wire.Conn, conn net.Conn, payload []byte, sess *session) bool {
	tr, vecPayload, err := wire.ParseTrain(payload)
	if err != nil {
		s.respondError(wc, conn, wire.ErrorMsg{Code: wire.ErrCodeBadRequest, PeerVersion: wire.Version, Text: err.Error()})
		return false
	}
	weights, _, err := wire.DecodeVector(vecPayload, sess.spare[:0], sess.global)
	if err != nil {
		code := wire.ErrCodeBadRequest
		if errors.Is(err, wire.ErrNoRef) {
			// The coordinator delta-coded against a reference this
			// connection does not hold: state skew. Closing forces a
			// fresh connection, which resets both ends to full frames.
			code = wire.ErrCodeNoDeltaRef
		}
		s.respondError(wc, conn, wire.ErrorMsg{Code: code, PeerVersion: wire.Version, Text: err.Error()})
		return false
	}
	sess.spare = weights // keep ownership of the (possibly regrown) buffer

	respType, build, err := s.peer.respondTrain(tr, weights, s.scfg)
	if err != nil {
		// Application error: report it and keep serving. The delta
		// reference is NOT committed — the coordinator only commits its
		// side on the success response, and both ends must move in
		// lockstep.
		s.respondError(wc, conn, wire.ErrorMsg{Code: wire.ErrCodeApp, PeerVersion: wire.Version, Text: err.Error()})
		return true
	}

	if s.scfg.RequestTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.scfg.RequestTimeout))
	}
	werr := wc.WriteFrame(respType, build)
	// Commit the session's delta reference at the success-response
	// boundary: the decoded broadcast becomes the reference, the old
	// reference becomes decode scratch. If the write failed the
	// coordinator saw a transport error and will re-dial, discarding this
	// session anyway.
	sess.global, sess.spare = weights, sess.global
	return werr == nil
}

func (s *ClientServer) respond(wc *wire.Conn, conn net.Conn, t wire.MsgType, build func([]byte) ([]byte, error)) {
	if s.scfg.RequestTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.scfg.RequestTimeout))
	}
	_ = wc.WriteFrame(t, build) // best effort; coordinator detects broken pipes
}

func (s *ClientServer) respondError(wc *wire.Conn, conn net.Conn, e wire.ErrorMsg) {
	s.respond(wc, conn, wire.MsgError, func(b []byte) ([]byte, error) {
		return wire.AppendError(b, e)
	})
}

// countingConn counts transferred bytes around a net.Conn.
type countingConn struct {
	net.Conn
	sent, recv *atomic.Uint64
}

func (c countingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.recv.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.sent.Add(uint64(n))
	return n, err
}

// RemoteClient is a ClientHandle that reaches a ClientServer over TCP on
// a persistent connection. The exported fields tune failure handling and
// may be adjusted before the handle is used; they must not be mutated
// concurrently with calls. Calls are serialized by an internal mutex.
type RemoteClient struct {
	id   string
	addr string
	// DialTimeout bounds connection establishment per attempt.
	DialTimeout time.Duration
	// WriteTimeout bounds sending one request (the serialized global
	// weight vector). 0 = no deadline.
	WriteTimeout time.Duration
	// ReadTimeout bounds waiting for one Train response, which includes
	// the station's local training time — size it to the slowest
	// acceptable station, not to network latency. 0 = no deadline (the
	// coordinator's round deadline is then the only straggler cutoff).
	ReadTimeout time.Duration
	// ProbeTimeout bounds waiting for Hello/NumSamples responses, which
	// involve no training and should answer immediately; it keeps the
	// coordinator's preflight handshake from hanging on a dead station
	// even when ReadTimeout is unset. 0 = fall back to ReadTimeout.
	ProbeTimeout time.Duration
	// MaxRetries is the number of additional attempts after a transient
	// dial/IO failure. Application errors (ErrRemote) and affirmative
	// protocol mismatches are never retried.
	MaxRetries int
	// RetryBackoff is the base sleep before the first retry; the ceiling
	// doubles after every failed attempt (capped at 30s) and the actual
	// sleep is drawn uniformly from [0, ceiling) — "full jitter", so a
	// fleet of stations re-dialing a restarted coordinator spreads out
	// instead of hammering it in lockstep.
	RetryBackoff time.Duration
	// JitterSeed seeds the backoff jitter stream. 0 derives a per-handle
	// seed from the handle's ID and address, so different stations jitter
	// differently while any single handle stays deterministic.
	JitterSeed uint64
	// Dialer, if set, replaces net.DialTimeout("tcp", ...) — the dial-side
	// seam the chaos fault injector plugs into (chaos.Injector.Dialer).
	// Nil costs nothing.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)

	// jitter is the lazily-built backoff jitter stream; sleep is a test
	// seam over time.Sleep. Both are touched only under mu (every public
	// call holds it).
	jitter *rng.Source
	sleep  func(time.Duration)

	mu       sync.Mutex
	conn     net.Conn
	wc       *wire.Conn
	connSent bool // a Train completed on this connection (delta reference live)
	// sentGlobal is the station's committed broadcast reconstruction —
	// the delta codec's downlink reference — and reconBuf the in-flight
	// reconstruction; they swap on TrainOK.
	sentGlobal []float64
	reconBuf   []float64

	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64
}

var _ ClientHandle = (*RemoteClient)(nil)
var _ Prober = (*RemoteClient)(nil)

// NewRemoteClient builds a handle for the client served at addr, with
// production-leaning defaults: 5s dial timeout, 30s write deadline, 10m
// training read deadline, 10s probe deadline, and 2 retries starting at
// a 200ms backoff.
func NewRemoteClient(id, addr string) *RemoteClient {
	return &RemoteClient{
		id:           id,
		addr:         addr,
		DialTimeout:  5 * time.Second,
		WriteTimeout: 30 * time.Second,
		ReadTimeout:  10 * time.Minute,
		ProbeTimeout: 10 * time.Second,
		MaxRetries:   2,
		RetryBackoff: 200 * time.Millisecond,
	}
}

// ID implements ClientHandle.
func (r *RemoteClient) ID() string { return r.id }

// Traffic reports the total bytes this handle has sent and received,
// including frame headers and every retry.
func (r *RemoteClient) Traffic() (sent, recv uint64) {
	return r.bytesSent.Load(), r.bytesRecv.Load()
}

// Close releases the persistent connection (if any). The handle remains
// usable: the next call re-dials.
func (r *RemoteClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resetConn()
	return nil
}

func (r *RemoteClient) ensureConn() error {
	if r.conn != nil {
		return nil
	}
	dial := r.Dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(r.addr, r.DialTimeout)
	if err != nil {
		return fmt.Errorf("fed: dial %s: %w", r.addr, err)
	}
	cc := countingConn{Conn: conn, sent: &r.bytesSent, recv: &r.bytesRecv}
	r.conn = cc
	r.wc = wire.NewConn(cc)
	r.connSent = false
	return nil
}

func (r *RemoteClient) resetConn() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
		r.wc = nil
	}
	r.connSent = false
}

// Hello performs the identity/compatibility handshake with the station.
// A silent peer (deadline or EOF with no Hello response) is reported as
// ErrHello; an affirmative incompatibility as ErrProtocolMismatch.
func (r *RemoteClient) Hello() (HelloInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var info HelloInfo
	err := r.roundTrip(func() error {
		fr, err := r.exchange(true, wire.MsgHello, nil)
		if err != nil {
			return err
		}
		ok, err := wire.ParseHelloOK(fr.Payload)
		if err != nil {
			return fmt.Errorf("fed: %s: %w", r.addr, err)
		}
		info = HelloInfo{StationID: ok.StationID, ModelDim: ok.ModelDim, NumSamples: ok.NumSamples, Role: ok.Role}
		return nil
	})
	if err != nil && !errors.Is(err, ErrRemote) && !errors.Is(err, ErrProtocolMismatch) {
		var nerr net.Error
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
			(errors.As(err, &nerr) && nerr.Timeout()) {
			err = fmt.Errorf("%w: %s: %w", ErrHello, r.addr, err)
		}
	}
	if err != nil {
		return HelloInfo{}, err
	}
	return info, nil
}

// NumSamples implements ClientHandle.
func (r *RemoteClient) NumSamples() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int
	err := r.roundTrip(func() error {
		fr, err := r.exchange(true, wire.MsgProbe, nil)
		if err != nil {
			return err
		}
		ok, err := wire.ParseProbeOK(fr.Payload)
		if err != nil {
			return fmt.Errorf("fed: %s: %w", r.addr, err)
		}
		n = ok.NumSamples
		return nil
	})
	return n, err
}

// Train implements ClientHandle. The broadcast goes down encoded per
// cfg.Codec (delta-coded against the previous broadcast once this
// connection has completed a round) and the update comes back encoded
// per the station's effective codec.
func (r *RemoteClient) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := cfg.Codec.validate(); err != nil {
		return Update{}, fmt.Errorf("fed: %s: %w", r.id, err)
	}
	var u Update
	err := r.roundTrip(func() error {
		down := cfg.Codec.downVec(r.connSent)
		var ref []float64
		if down == wire.VecQ8 {
			ref = r.sentGlobal
		}
		if cap(r.reconBuf) < len(global) {
			r.reconBuf = make([]float64, len(global))
		}
		recon := r.reconBuf[:len(global)]

		fr, err := r.exchange(false, wire.MsgTrain, func(b []byte) ([]byte, error) {
			b = wire.AppendTrain(b, wire.Train{
				Round:        cfg.Round,
				Epochs:       cfg.Epochs,
				BatchSize:    cfg.BatchSize,
				Workers:      cfg.Workers,
				LearningRate: cfg.LearningRate,
				ProximalMu:   cfg.ProximalMu,
				PrivacyClip:  cfg.Privacy.ClipNorm,
				PrivacyNoise: cfg.Privacy.NoiseStd,
				UpdateCodec:  cfg.Codec.upVec(),
				PartialKind:  uint8(cfg.PartialKind),
			})
			return wire.AppendVector(b, down, global, ref, recon)
		})
		if err != nil {
			return err
		}
		ok, rest, err := wire.ParseTrainOK(fr.Payload)
		if err != nil {
			return fmt.Errorf("fed: %s: %w", r.addr, err)
		}
		// The update outlives this call (the coordinator aggregates it),
		// so it gets its own allocation; the uplink delta reference is
		// this round's broadcast exactly as the station reconstructed it.
		weights, _, err := wire.DecodeVector(rest, nil, recon)
		if err != nil {
			return fmt.Errorf("fed: %s: decode update: %w", r.addr, err)
		}
		u = Update{
			ClientID:     ok.StationID,
			Weights:      weights,
			NumSamples:   ok.NumSamples,
			TrainSeconds: ok.TrainSeconds,
			FinalLoss:    ok.FinalLoss,
		}
		// Commit the downlink delta reference at the same boundary the
		// station does (TrainOK).
		r.sentGlobal, r.reconBuf = recon, r.sentGlobal
		r.connSent = true
		return nil
	})
	if err != nil {
		return Update{}, err
	}
	return u, nil
}

// exchange performs one framed request/response on the live connection,
// mapping Error frames and version skew to typed errors.
func (r *RemoteClient) exchange(probe bool, t wire.MsgType, build func([]byte) ([]byte, error)) (wire.Frame, error) {
	if r.WriteTimeout > 0 {
		_ = r.conn.SetWriteDeadline(time.Now().Add(r.WriteTimeout))
	}
	if err := r.wc.WriteFrame(t, build); err != nil {
		return wire.Frame{}, fmt.Errorf("fed: send to %s: %w", r.addr, err)
	}
	readTimeout := r.ReadTimeout
	if probe && r.ProbeTimeout > 0 {
		readTimeout = r.ProbeTimeout
	}
	if readTimeout > 0 {
		_ = r.conn.SetReadDeadline(time.Now().Add(readTimeout))
	}
	fr, err := r.wc.ReadFrame()
	if err != nil {
		if errors.Is(err, wire.ErrBadMagic) {
			return wire.Frame{}, fmt.Errorf("%w: %s answered with bytes that are not the binary protocol", ErrProtocolMismatch, r.addr)
		}
		return wire.Frame{}, fmt.Errorf("fed: receive from %s: %w", r.addr, err)
	}
	if fr.Version != wire.Version {
		return wire.Frame{}, fmt.Errorf("%w: %s answered with protocol v%d, this coordinator speaks v%d",
			ErrProtocolMismatch, r.addr, fr.Version, wire.Version)
	}
	if fr.Type == wire.MsgError {
		e, perr := wire.ParseError(fr.Payload)
		if perr != nil {
			return wire.Frame{}, fmt.Errorf("fed: %s: unparseable error frame: %w", r.addr, perr)
		}
		switch e.Code {
		case wire.ErrCodeVersion:
			return wire.Frame{}, fmt.Errorf("%w: %s speaks protocol v%d, this coordinator speaks v%d",
				ErrProtocolMismatch, r.addr, e.PeerVersion, wire.Version)
		case wire.ErrCodeApp:
			return wire.Frame{}, fmt.Errorf("%w: %s: %s", ErrRemote, r.id, e.Text)
		default:
			// BadRequest / NoDeltaRef: protocol state skew; the connection
			// reset performed by the caller clears it, so the retry ladder
			// (with a fresh connection and full frames) may succeed.
			return wire.Frame{}, fmt.Errorf("fed: %s rejected the request (code %d): %s", r.addr, e.Code, e.Text)
		}
	}
	return fr, nil
}

// once runs op over a live connection, transparently replacing a stale
// persistent connection: if a *reused* connection fails with a transport
// error, it re-dials once immediately (not counted against the retry
// budget) — the normal fate of a connection the server idle-reaped
// between rounds.
func (r *RemoteClient) once(op func() error) error {
	reused := r.conn != nil
	if err := r.ensureConn(); err != nil {
		return err
	}
	err := op()
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrRemote) {
		return err // application error: the connection stays healthy
	}
	r.resetConn()
	if reused && !errors.Is(err, ErrProtocolMismatch) {
		if err2 := r.ensureConn(); err2 != nil {
			return err2
		}
		err = op()
		if err != nil && !errors.Is(err, ErrRemote) {
			r.resetConn()
		}
	}
	return err
}

// isProtocolMismatch reports an affirmative protocol incompatibility
// (always fatal at preflight, even under tolerance).
func isProtocolMismatch(err error) bool { return errors.Is(err, ErrProtocolMismatch) }

// wireTrainBytes is the exact Train frame size (header included) for one
// broadcast under codec c; first selects the full-precision fallback a
// delta codec pays before the connection holds a reference. The
// coordinator uses it to report bytes-per-round for in-process
// federations under the same policy a TCP deployment would pay.
func wireTrainBytes(c Codec, dim int, first bool) int {
	return wire.TrainBytes(c.downVec(!first), dim)
}

// wireTrainOKBytes is the exact TrainOK frame size for one update under
// codec c and a station-ID length.
func wireTrainOKBytes(c Codec, dim, idLen int) int {
	return wire.TrainOKBytes(c.upVec(), dim, idLen)
}

// roundTrip performs one call with bounded retries. Retrying a Train call
// is safe: the station reinstalls the broadcast weights on every call, so
// a duplicate attempt recomputes the same deterministic update. Retry
// sleeps use full jitter — uniform in [0, ceiling), ceiling doubling per
// attempt — so handles that failed together (a coordinator or station
// restart) do not retry in lockstep.
func (r *RemoteClient) roundTrip(op func() error) error {
	attempts := 1 + r.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	backoff := r.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	const backoffCap = 30 * time.Second
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.sleepFor(r.jitterDelay(backoff))
			if backoff < backoffCap {
				backoff *= 2
			}
		}
		err := r.once(op)
		if err == nil {
			return nil
		}
		lastErr = err
		if errors.Is(err, ErrRemote) || errors.Is(err, ErrProtocolMismatch) {
			// The station answered: an application error would only
			// repeat, a protocol mismatch cannot self-heal.
			return err
		}
	}
	if attempts > 1 {
		return fmt.Errorf("fed: %s: %d attempts failed: %w", r.addr, attempts, lastErr)
	}
	return lastErr
}

// jitterDelay draws one full-jitter sleep: uniform in [0, ceiling). The
// stream is seeded per handle (JitterSeed, or derived from id/addr) so a
// single handle's retry schedule is deterministic while a fleet's spreads.
func (r *RemoteClient) jitterDelay(ceiling time.Duration) time.Duration {
	if r.jitter == nil {
		seed := r.JitterSeed
		if seed == 0 {
			h := fnv.New64a()
			io.WriteString(h, r.id)
			io.WriteString(h, "\x00")
			io.WriteString(h, r.addr)
			seed = h.Sum64()
		}
		r.jitter = rng.New(seed)
	}
	return time.Duration(r.jitter.Float64() * float64(ceiling))
}

func (r *RemoteClient) sleepFor(d time.Duration) {
	if r.sleep != nil {
		r.sleep(d)
		return
	}
	time.Sleep(d)
}

// connScopedDeltaRef marks the handle's q8 delta reference as living in
// its network connection (see connRefHolder): a checkpointed flag must
// not be restored over a process restart, because the connection — and
// the station's matching reference — died with the old process.
func (r *RemoteClient) connScopedDeltaRef() {}
