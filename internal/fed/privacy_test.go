package fed

import (
	"errors"
	"math"
	"testing"

	"github.com/evfed/evfed/internal/nn"
	"github.com/evfed/evfed/internal/rng"
)

func TestPrivacyValidate(t *testing.T) {
	cases := []struct {
		p  Privacy
		ok bool
	}{
		{Privacy{}, true},
		{Privacy{ClipNorm: 1}, true},
		{Privacy{ClipNorm: 1, NoiseStd: 0.1}, true},
		{Privacy{NoiseStd: 0.1}, false}, // noise without clip
		{Privacy{ClipNorm: -1}, false},
		{Privacy{ClipNorm: 1, NoiseStd: -0.1}, false},
	}
	for i, c := range cases {
		err := c.p.validate()
		if c.ok && err != nil {
			t.Fatalf("case %d: unexpected error %v", i, err)
		}
		if !c.ok && !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

func TestPrivatizeClipsDelta(t *testing.T) {
	p := Privacy{ClipNorm: 1}
	global := []float64{0, 0, 0}
	weights := []float64{3, 4, 0} // delta norm 5
	if err := p.privatize(weights, global, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	var norm float64
	for i := range weights {
		norm += (weights[i] - global[i]) * (weights[i] - global[i])
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-12 {
		t.Fatalf("clipped delta norm %v", math.Sqrt(norm))
	}
	// Direction preserved.
	if weights[0] <= 0 || weights[1] <= 0 || math.Abs(weights[0]/weights[1]-0.75) > 1e-12 {
		t.Fatalf("clipping changed direction: %v", weights)
	}
}

func TestPrivatizeSmallDeltaUntouched(t *testing.T) {
	p := Privacy{ClipNorm: 10}
	global := []float64{1, 1}
	weights := []float64{1.1, 0.9}
	orig := append([]float64(nil), weights...)
	if err := p.privatize(weights, global, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	for i := range weights {
		if weights[i] != orig[i] {
			t.Fatalf("sub-threshold delta modified: %v", weights)
		}
	}
}

func TestPrivatizeNoiseStatistics(t *testing.T) {
	p := Privacy{ClipNorm: 100, NoiseStd: 0.5}
	r := rng.New(7)
	const n = 20000
	global := make([]float64, n)
	weights := make([]float64, n) // delta zero, so output = pure noise
	if err := p.privatize(weights, global, r); err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, v := range weights {
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("noise mean %v", mean)
	}
	if math.Abs(std-0.5) > 0.02 {
		t.Fatalf("noise std %v want 0.5", std)
	}
}

func TestPrivatizeDisabledPassthrough(t *testing.T) {
	var p Privacy
	weights := []float64{5, 6}
	if err := p.privatize(weights, []float64{0, 0}, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	if weights[0] != 5 || weights[1] != 6 {
		t.Fatalf("disabled privacy modified weights: %v", weights)
	}
}

func TestPrivatizeLengthMismatch(t *testing.T) {
	p := Privacy{ClipNorm: 1}
	if err := p.privatize([]float64{1}, []float64{1, 2}, rng.New(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestClientTrainWithPrivacy(t *testing.T) {
	c, err := NewClient("dp", smallSpec(), clientSeries(150, 0, 1), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.Build(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	global := m.WeightsVector()
	ltc := LocalTrainConfig{
		Epochs: 1, BatchSize: 16, LearningRate: 0.005,
		Privacy: Privacy{ClipNorm: 0.5, NoiseStd: 0.01},
	}
	u, err := c.Train(global, ltc)
	if err != nil {
		t.Fatal(err)
	}
	// The shipped update's delta must respect the clip bound (allowing for
	// the added noise: n coords of std 0.01 → noise norm ≈ 0.01·sqrt(dim)).
	var norm float64
	for i := range u.Weights {
		d := u.Weights[i] - global[i]
		norm += d * d
	}
	noiseAllowance := 0.01 * math.Sqrt(float64(len(global))) * 2
	if math.Sqrt(norm) > 0.5+noiseAllowance {
		t.Fatalf("privatized delta norm %v exceeds clip+noise bound", math.Sqrt(norm))
	}
}

func TestFederationWithPrivacyConverges(t *testing.T) {
	clients := makeClients(t, 3)
	cfg := smallConfig(67)
	cfg.Privacy = Privacy{ClipNorm: 5, NoiseStd: 0.001}
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[len(res.Rounds)-1].MeanLoss >= res.Rounds[0].MeanLoss {
		t.Fatalf("DP federation did not converge: %+v", res.Rounds)
	}
	// Invalid privacy rejected at construction.
	bad := smallConfig(1)
	bad.Privacy = Privacy{NoiseStd: 1}
	if _, err := NewCoordinator(smallSpec(), clients, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}
