package fed

import (
	"errors"
	"math"
	"testing"

	"github.com/evfed/evfed/internal/fed/wire"
)

func TestParseCodec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Codec
	}{
		{"", CodecNone}, {"none", CodecNone}, {"f64", CodecNone},
		{"f32", CodecF32}, {"Float32", CodecF32},
		{"q8", CodecQ8}, {"int8", CodecQ8},
	} {
		got, err := ParseCodec(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseCodec(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseCodec("zstd"); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	for _, c := range []Codec{CodecNone, CodecF32, CodecQ8} {
		if _, err := ParseCodec(c.String()); err != nil {
			t.Fatalf("String/Parse round trip for %v: %v", c, err)
		}
	}
}

// runCodecFederation runs a small in-process federation under the codec.
func runCodecFederation(t *testing.T, codec Codec, seed uint64) *RunResult {
	t.Helper()
	clients := makeClients(t, 3)
	cfg := smallConfig(seed)
	cfg.Codec = codec
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Compressed federations must stay close to the uncompressed one: the
// codecs trade bounded precision, not learning behaviour.
func TestCodecFederationParity(t *testing.T) {
	base := runCodecFederation(t, CodecNone, 23)
	for _, codec := range []Codec{CodecF32, CodecQ8} {
		res := runCodecFederation(t, codec, 23)
		if len(res.Global) != len(base.Global) {
			t.Fatalf("%v: dim %d vs %d", codec, len(res.Global), len(base.Global))
		}
		var maxDiff, scale float64
		for i := range base.Global {
			maxDiff = math.Max(maxDiff, math.Abs(res.Global[i]-base.Global[i]))
			scale = math.Max(scale, math.Abs(base.Global[i]))
		}
		// Loose behavioural bound: quantization perturbs each round's
		// update by ≲0.4% of the largest per-chunk delta, compounded over
		// two rounds of training on identical data.
		if maxDiff > 0.1*math.Max(scale, 1) {
			t.Fatalf("%v: global diverged, max |Δw| = %v (scale %v)", codec, maxDiff, scale)
		}
		// Training must still make progress under compression.
		last := res.Rounds[len(res.Rounds)-1]
		if last.MeanLoss >= res.Rounds[0].MeanLoss {
			t.Fatalf("%v: loss did not decrease: %v -> %v", codec, res.Rounds[0].MeanLoss, last.MeanLoss)
		}
	}
}

// Codec simulation must be deterministic: identical runs, identical bits.
func TestCodecFederationDeterministic(t *testing.T) {
	a := runCodecFederation(t, CodecQ8, 29)
	b := runCodecFederation(t, CodecQ8, 29)
	for i := range a.Global {
		if a.Global[i] != b.Global[i] {
			t.Fatalf("q8 federation not reproducible at weight %d", i)
		}
	}
}

// Byte accounting: the coordinator reports the exact binary frame sizes
// for the configured codec, with the delta codec paying the float32
// fallback only on each client's first completed round.
func TestRoundStatByteAccounting(t *testing.T) {
	m, err := buildModelDim(t)
	if err != nil {
		t.Fatal(err)
	}
	dim := m
	idLen := 1 // makeClients uses single-rune IDs
	for _, codec := range []Codec{CodecNone, CodecF32, CodecQ8} {
		res := runCodecFederation(t, codec, 31)
		if len(res.Rounds) != 2 {
			t.Fatalf("rounds %d", len(res.Rounds))
		}
		upWant := uint64(3 * wireTrainOKBytes(codec, dim, idLen))
		for r, rs := range res.Rounds {
			first := r == 0
			downWant := uint64(3 * wireTrainBytes(codec, dim, first))
			if rs.BytesDown != downWant {
				t.Fatalf("%v round %d: down %d want %d", codec, r, rs.BytesDown, downWant)
			}
			if rs.BytesUp != upWant {
				t.Fatalf("%v round %d: up %d want %d", codec, r, rs.BytesUp, upWant)
			}
		}
		if res.BytesDown != res.Rounds[0].BytesDown+res.Rounds[1].BytesDown {
			t.Fatalf("%v: total down %d inconsistent", codec, res.BytesDown)
		}
	}
	// Compression must actually compress, with q8 ≥ 5× under the steady
	// state the acceptance gate measures.
	noneRound := 3 * (wireTrainBytes(CodecNone, dim, false) + wireTrainOKBytes(CodecNone, dim, idLen))
	f32Round := 3 * (wireTrainBytes(CodecF32, dim, false) + wireTrainOKBytes(CodecF32, dim, idLen))
	q8Round := 3 * (wireTrainBytes(CodecQ8, dim, false) + wireTrainOKBytes(CodecQ8, dim, idLen))
	if !(q8Round < f32Round && f32Round < noneRound) {
		t.Fatalf("codec ordering broken: none=%d f32=%d q8=%d", noneRound, f32Round, q8Round)
	}
	if float64(noneRound)/float64(q8Round) < 5 {
		t.Fatalf("steady-state q8 reduction below 5x even vs binary f64: none=%d q8=%d", noneRound, q8Round)
	}
}

func buildModelDim(t *testing.T) (int, error) {
	t.Helper()
	w, err := freshWeights(t)
	if err != nil {
		return 0, err
	}
	return len(w), nil
}

// The in-process simulation must perform the identical arithmetic the
// wire performs for the uplink leg: a client's q8 update reconstructs
// exactly on the quantization grid of its delta against the float32
// downlink reference.
func TestClientCodecSimulationOnGrid(t *testing.T) {
	c, err := NewClient("grid", smallSpec(), clientSeries(150, 0, 3), 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	global, err := freshWeights(t)
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.Train(global, LocalTrainConfig{Epochs: 1, BatchSize: 16, LearningRate: 0.005, Codec: CodecQ8})
	if err != nil {
		t.Fatal(err)
	}
	ref := append([]float64(nil), global...)
	wire.RoundTripF32(ref)
	// Re-applying the uplink round trip must be the identity: the update
	// is already on the quantization grid.
	again := append([]float64(nil), u.Weights...)
	if err := wire.RoundTripQ8(again, ref); err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != u.Weights[i] {
			t.Fatalf("update not on the q8 grid at %d: %v vs %v", i, again[i], u.Weights[i])
		}
	}
}

func TestTrainRejectsInvalidCodec(t *testing.T) {
	c, err := NewClient("bad", smallSpec(), clientSeries(150, 0, 4), 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	global, err := freshWeights(t)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Train(global, LocalTrainConfig{Epochs: 1, BatchSize: 8, LearningRate: 0.01, Codec: Codec(9)}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	cfg := smallConfig(1)
	cfg.Codec = Codec(9)
	if _, err := NewCoordinator(smallSpec(), makeClients(t, 1), cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("coordinator: want ErrBadConfig, got %v", err)
	}
}
