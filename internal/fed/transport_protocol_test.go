package fed

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"github.com/evfed/evfed/internal/fed/wire"
)

// legacyGobRequest mirrors the pre-binary-protocol gob schema (PR 2/3)
// so tests can impersonate legacy peers.
type legacyGobRequest struct {
	Hello   bool
	Probe   bool
	Weights []float64
	Config  struct {
		Epochs       int
		BatchSize    int
		LearningRate float64
	}
}

type legacyGobResponse struct {
	StationID  string
	ModelDim   int
	NumSamples int
	Err        string
}

// legacyGobStation accepts connections and behaves like the old gob
// server: block decoding a gob request, answer with a gob response.
func legacyGobStation(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var req legacyGobRequest
				if err := gob.NewDecoder(conn).Decode(&req); err != nil {
					return
				}
				_ = gob.NewEncoder(conn).Encode(&legacyGobResponse{StationID: "legacy", NumSamples: 1})
			}()
		}
	}()
	return ln
}

// A new coordinator against a legacy gob station must fail with a typed
// error under the probe deadline — the gob decoder blocks waiting for a
// message our 8-byte Hello frame never completes, so no hang is the
// acceptance bar.
func TestTransportGobStationRejected(t *testing.T) {
	skipIfShort(t)
	ln := legacyGobStation(t)
	rc := NewRemoteClient("legacy", ln.Addr().String())
	rc.ProbeTimeout = 200 * time.Millisecond
	rc.MaxRetries = 0
	start := time.Now()
	_, err := rc.Hello()
	if !errors.Is(err, ErrHello) {
		t.Fatalf("want ErrHello, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("gob station was not cut off by the deadline: %v", elapsed)
	}
}

// A legacy gob coordinator against a new binary station must be dropped
// promptly (magic check), without wedging the server.
func TestTransportGobCoordinatorRejected(t *testing.T) {
	skipIfShort(t)
	c, err := NewClient("bin", smallSpec(), clientSeries(150, 0, 7), 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClient(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := legacyGobRequest{Hello: true}
	if err := gob.NewEncoder(conn).Encode(&req); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("station should close the connection cleanly, got %v", err)
	}
	// The station must still serve binary peers afterwards.
	rc := NewRemoteClient("bin", srv.Addr())
	if _, err := rc.NumSamples(); err != nil {
		t.Fatalf("station wedged after gob connection: %v", err)
	}
}

// versionSkewStation answers any frame with a hand-crafted frame carrying
// a foreign protocol version: either a version MsgError (a well-behaved
// future station) or a plain response stamped with the future version.
func versionSkewStation(t *testing.T, viaErrorFrame bool) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				hdr := make([]byte, wire.HeaderBytes)
				if _, err := io.ReadFull(conn, hdr); err != nil {
					return
				}
				payloadLen := int(binary.LittleEndian.Uint32(hdr[4:8]))
				if _, err := io.CopyN(io.Discard, conn, int64(payloadLen)); err != nil {
					return
				}
				var payload []byte
				var msgType byte
				version := byte(99)
				if viaErrorFrame {
					msgType = 7 // MsgError
					version = wire.Version
					payload = append(payload, 2 /* ErrCodeVersion */, 99)
					payload = binary.LittleEndian.AppendUint16(payload, uint16(len("speak v99")))
					payload = append(payload, "speak v99"...)
				} else {
					msgType = 2 // MsgHelloOK stamped with a foreign version
					payload = binary.LittleEndian.AppendUint16(payload, 1)
					payload = append(payload, 'x')
					payload = binary.LittleEndian.AppendUint32(payload, 3)
					payload = binary.LittleEndian.AppendUint32(payload, 4)
				}
				frame := []byte{'E', 'V', version, msgType, 0, 0, 0, 0}
				binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
				frame = append(frame, payload...)
				_, _ = conn.Write(frame)
			}()
		}
	}()
	return ln
}

// Version skew in either form must surface as ErrProtocolMismatch, fast
// (no retries — a protocol mismatch cannot self-heal).
func TestTransportVersionSkewHello(t *testing.T) {
	skipIfShort(t)
	for _, viaError := range []bool{true, false} {
		ln := versionSkewStation(t, viaError)
		rc := NewRemoteClient("future", ln.Addr().String())
		rc.MaxRetries = 3
		rc.RetryBackoff = 300 * time.Millisecond
		start := time.Now()
		_, err := rc.Hello()
		if !errors.Is(err, ErrProtocolMismatch) {
			t.Fatalf("viaError=%v: want ErrProtocolMismatch, got %v", viaError, err)
		}
		if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
			t.Fatalf("viaError=%v: protocol mismatch was retried: %v", viaError, elapsed)
		}
	}
}

// The station must answer a version-skewed coordinator with a typed
// version MsgError frame carrying its own revision, then close.
func TestTransportStationAnswersVersionSkew(t *testing.T) {
	skipIfShort(t)
	c, err := NewClient("v1", smallSpec(), clientSeries(150, 0, 8), 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClient(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A Hello frame from protocol v42.
	if _, err := conn.Write([]byte{'E', 'V', 42, byte(wire.MsgHello), 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	wc := wire.NewConn(conn)
	fr, err := wc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Type != wire.MsgError {
		t.Fatalf("want MsgError, got type %d", fr.Type)
	}
	e, err := wire.ParseError(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.ErrCodeVersion || e.PeerVersion != wire.Version {
		t.Fatalf("error frame %+v", e)
	}
	if _, err := wc.ReadFrame(); err != io.EOF {
		t.Fatalf("station should close after version error, got %v", err)
	}
}

// Persistent connections: consecutive calls reuse one TCP connection, a
// server-side idle reap is healed by a transparent re-dial, and the byte
// counters match the exact modeled frame sizes.
func TestTransportPersistentConnectionReuse(t *testing.T) {
	skipIfShort(t)
	c, err := NewClient("persist", smallSpec(), clientSeries(150, 0, 9), 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClient(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	rc := NewRemoteClient("persist", srv.Addr())
	defer rc.Close()
	global, err := freshWeights(t)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LocalTrainConfig{Epochs: 1, BatchSize: 16, LearningRate: 0.005}
	if _, err := rc.NumSamples(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		cfg.Round = round
		if _, err := rc.Train(global, cfg); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if got := srv.acceptedConns(); got != 1 {
		t.Fatalf("expected one persistent connection, server accepted %d", got)
	}
}

func TestTransportReconnectsAfterIdleReap(t *testing.T) {
	skipIfShort(t)
	c, err := NewClient("reap", smallSpec(), clientSeries(150, 0, 10), 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClientConfig(c, "127.0.0.1:0", ServerConfig{RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	rc := NewRemoteClient("reap", srv.Addr())
	rc.MaxRetries = 0 // the stale-connection redial must not need the retry budget
	defer rc.Close()
	if _, err := rc.NumSamples(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // server reaps the idle connection
	if _, err := rc.NumSamples(); err != nil {
		t.Fatalf("transparent re-dial failed: %v", err)
	}
	if got := srv.acceptedConns(); got != 2 {
		t.Fatalf("expected a re-dial after idle reap, server accepted %d connections", got)
	}
}

func TestTransportTrafficCountersMatchModel(t *testing.T) {
	skipIfShort(t)
	c, err := NewClient("count", smallSpec(), clientSeries(150, 0, 11), 12, 11)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClient(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	global, err := freshWeights(t)
	if err != nil {
		t.Fatal(err)
	}
	dim := len(global)
	for _, codec := range []Codec{CodecNone, CodecF32, CodecQ8} {
		rc := NewRemoteClient("count", srv.Addr())
		cfg := LocalTrainConfig{Epochs: 1, BatchSize: 16, LearningRate: 0.005, Codec: codec}
		// Two rounds: the delta codec's second round exercises the q8
		// downlink.
		for round := 0; round < 2; round++ {
			cfg.Round = round
			if _, err := rc.Train(global, cfg); err != nil {
				t.Fatalf("%v round %d: %v", codec, round, err)
			}
		}
		rc.Close()
		sent, recv := rc.Traffic()
		wantSent := uint64(wireTrainBytes(codec, dim, true) + wireTrainBytes(codec, dim, false))
		wantRecv := uint64(2 * wireTrainOKBytes(codec, dim, len("count")))
		if sent != wantSent {
			t.Fatalf("%v: sent %d bytes, model says %d", codec, sent, wantSent)
		}
		if recv != wantRecv {
			t.Fatalf("%v: received %d bytes, model says %d", codec, recv, wantRecv)
		}
	}
}

// End-to-end delta quantization over TCP: two identical stations, one
// trained through the q8 wire path and one uncompressed, must land close
// together — and the q8 station's second round must decode cleanly from
// a delta-coded broadcast.
func TestTransportQ8DeltaRoundTrip(t *testing.T) {
	skipIfShort(t)
	mk := func() (*ClientServer, *RemoteClient) {
		c, err := NewClient("q8", smallSpec(), clientSeries(150, 0, 12), 12, 12)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeClient(c, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Stop)
		return srv, NewRemoteClient("q8", srv.Addr())
	}
	_, plain := mk()
	_, quant := mk()
	defer plain.Close()
	defer quant.Close()

	g0, err := freshWeights(t)
	if err != nil {
		t.Fatal(err)
	}
	var uPlain, uQuant Update
	for round := 0; round < 2; round++ {
		cfg := LocalTrainConfig{Epochs: 2, BatchSize: 16, LearningRate: 0.005, Round: round}
		if uPlain, err = plain.Train(g0, cfg); err != nil {
			t.Fatal(err)
		}
		cfg.Codec = CodecQ8
		if uQuant, err = quant.Train(g0, cfg); err != nil {
			t.Fatal(err)
		}
	}
	var maxDiff float64
	for i := range uPlain.Weights {
		if !(math.IsInf(uQuant.Weights[i], 0) || math.IsNaN(uQuant.Weights[i])) {
			maxDiff = math.Max(maxDiff, math.Abs(uPlain.Weights[i]-uQuant.Weights[i]))
			continue
		}
		t.Fatalf("q8 update not finite at %d: %v", i, uQuant.Weights[i])
	}
	if maxDiff > 0.05 {
		t.Fatalf("q8 wire path diverged from uncompressed: max |Δw| = %v", maxDiff)
	}
	if maxDiff == 0 {
		t.Fatal("q8 path identical to uncompressed — quantization apparently not applied")
	}
}
