package fed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/evfed/evfed/internal/fed/wire"
	"github.com/evfed/evfed/internal/rng"
)

// Durable coordinator checkpoints. After a round aggregates, the
// coordinator persists everything a restarted process needs to continue
// bit-identically: the global weight vector, the completed-round index,
// the per-client delta-reference flags of the q8 codec, the accumulated
// RoundStats, and the exact mid-stream state of the sampling and
// failure-injection RNGs.
//
// File format (version 1), following the wire package's conventions —
// little-endian fixed-width fields, length-prefixed strings, and a
// self-describing vector payload:
//
//	magic   [4]byte  'E','V','C','K'
//	version uint8    checkpoint format revision (CheckpointVersion)
//	flags   uint8    reserved (0)
//	length  uint32   payload bytes, little-endian
//	payload [length]byte
//	crc     uint32   IEEE CRC-32 over header+payload, little-endian
//
// Writes are atomic: the file is assembled in a temporary sibling, synced,
// and renamed into place, so a crash mid-write leaves either the previous
// checkpoint or a temp file the loader never considers. Corrupt or
// truncated files are rejected with typed errors and LatestCheckpoint
// falls back to the newest file that still verifies.

// CheckpointVersion is the checkpoint format revision this build writes.
const CheckpointVersion = 1

const (
	ckptMagic0, ckptMagic1, ckptMagic2, ckptMagic3 = 'E', 'V', 'C', 'K'
	ckptHeaderBytes                                = 10
	ckptTrailerBytes                               = 4
	// maxCheckpointBytes bounds a checkpoint payload; a header claiming
	// more is rejected before any allocation (same cap as a wire frame).
	maxCheckpointBytes = wire.MaxFrameBytes
)

// Typed checkpoint errors.
var (
	// ErrCheckpointTruncated marks a checkpoint file cut off mid-payload
	// (a crash during a non-atomic copy, a partial download).
	ErrCheckpointTruncated = errors.New("fed: truncated checkpoint")
	// ErrCheckpointCorrupt marks a checkpoint whose magic, CRC, or payload
	// structure does not verify.
	ErrCheckpointCorrupt = errors.New("fed: corrupt checkpoint")
	// ErrCheckpointVersion marks a checkpoint written by an incompatible
	// format revision.
	ErrCheckpointVersion = errors.New("fed: unsupported checkpoint version")
	// ErrCheckpointMismatch marks a checkpoint that decodes but does not
	// belong to this federation (different seed, model dimension, or a
	// round index beyond the configured horizon).
	ErrCheckpointMismatch = errors.New("fed: checkpoint does not match this federation")
	// ErrNoCheckpoint reports that a checkpoint directory holds no usable
	// checkpoint.
	ErrNoCheckpoint = errors.New("fed: no usable checkpoint")
)

// CheckpointConfig enables durable per-round checkpoints on a
// Coordinator (Config.Checkpoint). The zero value disables them.
type CheckpointConfig struct {
	// Dir receives one checkpoint file per checkpointed round
	// (ckpt-NNNNNN.evck). Empty disables checkpointing.
	Dir string
	// Every checkpoints after every Nth completed round (<= 0 = every
	// round). The final round is always checkpointed.
	Every int
	// Retain keeps this many newest checkpoint files, pruning older ones
	// (<= 0 = 3). More retained files widen the corruption fallback
	// window at the cost of disk.
	Retain int
}

// Checkpoint is a coordinator's durable state after some completed round:
// everything Run needs (via Config.Resume) to continue exactly where the
// checkpointed process stopped.
type Checkpoint struct {
	// Seed is the federation seed the run was started with; resume
	// rejects a checkpoint from a different seed.
	Seed uint64
	// Round counts completed rounds — the resumed run's first round.
	Round int
	// Dim is the global weight-vector dimension.
	Dim int
	// Global is the aggregated global weight vector after Round rounds.
	Global []float64
	// SampleRNG and FailRNG are the exact mid-stream states of the
	// client-sampling and failure-injection generators.
	SampleRNG rng.SourceState
	FailRNG   rng.SourceState
	// DeltaRefs records, per client ID, whether the coordinator's byte
	// model held a live q8 delta reference for that client. At resume the
	// flags are restored for in-process handles only — a TCP handle's
	// reference lives in a connection that died with the process, and the
	// transport's fresh connections fall back to full frames on both ends
	// at once (see TestResumeReplaysCrashedRoundTCP).
	DeltaRefs map[string]bool
	// Rounds is the full per-round diagnostic history up to Round.
	Rounds []RoundStat
	// Cumulative RunResult counters up to Round.
	ClientSeconds    float64
	BytesDown        uint64
	BytesUp          uint64
	SubtreeBytesDown uint64
	SubtreeBytesUp   uint64
}

// compatible validates the checkpoint against a resuming run's identity.
func (cp *Checkpoint) compatible(seed uint64, dim, rounds int) error {
	switch {
	case cp.Seed != seed:
		return fmt.Errorf("%w: checkpoint seed %d, run seed %d", ErrCheckpointMismatch, cp.Seed, seed)
	case cp.Dim != dim || len(cp.Global) != dim:
		return fmt.Errorf("%w: checkpoint dim %d (%d weights), model dim %d",
			ErrCheckpointMismatch, cp.Dim, len(cp.Global), dim)
	case cp.Round < 0 || cp.Round > rounds:
		return fmt.Errorf("%w: checkpoint at round %d, run has %d rounds", ErrCheckpointMismatch, cp.Round, rounds)
	}
	return nil
}

// EncodeCheckpoint serializes cp into the versioned checkpoint format,
// including header and CRC trailer.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	b := []byte{ckptMagic0, ckptMagic1, ckptMagic2, ckptMagic3, CheckpointVersion, 0, 0, 0, 0, 0}
	b = binary.LittleEndian.AppendUint64(b, cp.Seed)
	b = binary.LittleEndian.AppendUint32(b, uint32(cp.Round))
	b = binary.LittleEndian.AppendUint32(b, uint32(cp.Dim))
	b = appendRNGState(b, cp.SampleRNG)
	b = appendRNGState(b, cp.FailRNG)
	var err error
	if b, err = wire.AppendVector(b, wire.VecF64, cp.Global, nil, nil); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(cp.DeltaRefs))
	for id := range cp.DeltaRefs {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic bytes for a given state
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		b = appendCkptString(b, id)
		b = appendBool(b, cp.DeltaRefs[id])
	}
	b = binary.LittleEndian.AppendUint64(b, bitsOf(cp.ClientSeconds))
	b = binary.LittleEndian.AppendUint64(b, cp.BytesDown)
	b = binary.LittleEndian.AppendUint64(b, cp.BytesUp)
	b = binary.LittleEndian.AppendUint64(b, cp.SubtreeBytesDown)
	b = binary.LittleEndian.AppendUint64(b, cp.SubtreeBytesUp)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cp.Rounds)))
	for i := range cp.Rounds {
		b = appendRoundStat(b, &cp.Rounds[i])
	}
	payload := len(b) - ckptHeaderBytes
	if payload > maxCheckpointBytes {
		return nil, fmt.Errorf("%w: %d payload bytes", ErrCheckpointCorrupt, payload)
	}
	binary.LittleEndian.PutUint32(b[6:10], uint32(payload))
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// DecodeCheckpoint parses a checkpoint file image, verifying magic,
// version, framing, and CRC. Truncated, corrupt, or version-skewed input
// is rejected with the corresponding typed error; no input can make it
// panic or allocate beyond the input's own size (counts are validated
// against the remaining bytes before use).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < ckptHeaderBytes+ckptTrailerBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrCheckpointTruncated, len(data))
	}
	if data[0] != ckptMagic0 || data[1] != ckptMagic1 || data[2] != ckptMagic2 || data[3] != ckptMagic3 {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	if data[4] != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads v%d", ErrCheckpointVersion, data[4], CheckpointVersion)
	}
	size := int(binary.LittleEndian.Uint32(data[6:10]))
	if size > maxCheckpointBytes {
		return nil, fmt.Errorf("%w: payload claims %d bytes", ErrCheckpointCorrupt, size)
	}
	total := ckptHeaderBytes + size + ckptTrailerBytes
	if len(data) < total {
		return nil, fmt.Errorf("%w: %d of %d bytes", ErrCheckpointTruncated, len(data), total)
	}
	if len(data) > total {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpointCorrupt, len(data)-total)
	}
	body := data[:ckptHeaderBytes+size]
	want := binary.LittleEndian.Uint32(data[ckptHeaderBytes+size:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: CRC 0x%08x, stored 0x%08x", ErrCheckpointCorrupt, got, want)
	}

	d := ckptDecoder{p: body[ckptHeaderBytes:]}
	cp := &Checkpoint{}
	cp.Seed = d.u64()
	cp.Round = int(d.u32())
	cp.Dim = int(d.u32())
	cp.SampleRNG = d.rngState()
	cp.FailRNG = d.rngState()
	if d.err == nil {
		var rest []byte
		var verr error
		cp.Global, rest, verr = wire.DecodeVector(d.p, nil, nil)
		if verr != nil {
			d.err = verr
		} else {
			d.p = rest
		}
	}
	if n := d.u32(); d.err == nil && n > 0 {
		cp.DeltaRefs = make(map[string]bool)
		for i := uint32(0); i < n && d.err == nil; i++ {
			id := d.str()
			if _, dup := cp.DeltaRefs[id]; dup {
				d.fail("duplicate delta-ref id")
				break
			}
			cp.DeltaRefs[id] = d.bool()
		}
	}
	cp.ClientSeconds = d.f64()
	cp.BytesDown = d.u64()
	cp.BytesUp = d.u64()
	cp.SubtreeBytesDown = d.u64()
	cp.SubtreeBytesUp = d.u64()
	nRounds := d.u32()
	for i := uint32(0); i < nRounds && d.err == nil; i++ {
		cp.Rounds = append(cp.Rounds, d.roundStat())
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, d.err)
	}
	if len(d.p) != 0 {
		return nil, fmt.Errorf("%w: %d unconsumed payload bytes", ErrCheckpointCorrupt, len(d.p))
	}
	if cp.Dim != len(cp.Global) {
		return nil, fmt.Errorf("%w: dim %d, %d weights", ErrCheckpointCorrupt, cp.Dim, len(cp.Global))
	}
	return cp, nil
}

// SaveCheckpoint atomically writes cp into dir as ckpt-NNNNNN.evck
// (write-to-temp, fsync, rename) and returns the final path.
func SaveCheckpoint(dir string, cp *Checkpoint) (string, error) {
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("fed: checkpoint dir: %w", err)
	}
	path := filepath.Join(dir, checkpointName(cp.Round))
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return "", fmt.Errorf("fed: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("fed: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("fed: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("fed: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("fed: checkpoint rename: %w", err)
	}
	return path, nil
}

// LoadCheckpoint reads and verifies one checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cp, nil
}

// LatestCheckpoint scans dir for the newest (highest-round) checkpoint
// that verifies, skipping corrupt or truncated files — the recovery
// guarantee that a crash mid-write (or a damaged newest file) falls back
// to the previous durable round. It returns the checkpoint and its path,
// or ErrNoCheckpoint (wrapping the last decode failure, if any) when
// nothing usable exists.
func LatestCheckpoint(dir string) (*Checkpoint, string, error) {
	paths, err := checkpointFiles(dir)
	if err != nil {
		return nil, "", err
	}
	var lastErr error
	for i := len(paths) - 1; i >= 0; i-- {
		cp, err := LoadCheckpoint(paths[i])
		if err != nil {
			lastErr = err
			continue
		}
		return cp, paths[i], nil
	}
	if lastErr != nil {
		return nil, "", fmt.Errorf("%w in %s: %v", ErrNoCheckpoint, dir, lastErr)
	}
	return nil, "", fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
}

// checkpointFiles lists dir's checkpoint files sorted by ascending round.
func checkpointFiles(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.evck"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches) // zero-padded round numbers sort numerically
	return matches, nil
}

// pruneCheckpoints removes all but the newest retain checkpoint files.
// Pruning is best-effort: a failed removal never fails the round.
func pruneCheckpoints(dir string, retain int) {
	if retain <= 0 {
		retain = 3
	}
	paths, err := checkpointFiles(dir)
	if err != nil || len(paths) <= retain {
		return
	}
	for _, p := range paths[:len(paths)-retain] {
		_ = os.Remove(p)
	}
}

func checkpointName(round int) string { return fmt.Sprintf("ckpt-%06d.evck", round) }

// ---- encoding helpers (wire-style little-endian primitives) ----

func bitsOf(v float64) uint64   { return math.Float64bits(v) }
func fromBits(u uint64) float64 { return math.Float64frombits(u) }

func appendRNGState(b []byte, st rng.SourceState) []byte {
	for _, w := range st.S {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	b = appendBool(b, st.HasSpare)
	return binary.LittleEndian.AppendUint64(b, bitsOf(st.Spare))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendCkptString writes a uint16-length-prefixed string, truncating
// anything longer than 64 KiB (only diagnostic strings get near that).
func appendCkptString(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendRoundStat(b []byte, rs *RoundStat) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(rs.Round))
	b = binary.LittleEndian.AppendUint64(b, bitsOf(rs.MeanLoss))
	b = binary.LittleEndian.AppendUint64(b, bitsOf(rs.WallSeconds))
	b = binary.LittleEndian.AppendUint64(b, rs.BytesDown)
	b = binary.LittleEndian.AppendUint64(b, rs.BytesUp)
	b = binary.LittleEndian.AppendUint64(b, rs.SubtreeBytesDown)
	b = binary.LittleEndian.AppendUint64(b, rs.SubtreeBytesUp)
	b = binary.LittleEndian.AppendUint32(b, uint32(rs.LeafParticipants))
	b = binary.LittleEndian.AppendUint32(b, uint32(rs.LeafDropped))
	b = appendStrings(b, rs.Selected)
	b = appendStrings(b, rs.Participants)
	b = appendStrings(b, rs.Dropped)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rs.Errors)))
	ids := make([]string, 0, len(rs.Errors))
	for id := range rs.Errors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		b = appendCkptString(b, id)
		b = appendCkptString(b, rs.Errors[id])
	}
	return appendCkptString(b, rs.HookPanic)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ss)))
	for _, s := range ss {
		b = appendCkptString(b, s)
	}
	return b
}

// ckptDecoder consumes a checkpoint payload front-to-back, latching the
// first framing error: every accessor after a failure returns zero values
// without advancing, so call sites stay linear instead of error-checked.
type ckptDecoder struct {
	p   []byte
	err error
}

func (d *ckptDecoder) fail(what string) {
	if d.err == nil {
		d.err = errors.New(what)
	}
}

func (d *ckptDecoder) take(n int, what string) []byte {
	if d.err != nil || len(d.p) < n {
		d.fail("short payload at " + what)
		return nil
	}
	out := d.p[:n]
	d.p = d.p[n:]
	return out
}

func (d *ckptDecoder) u16() uint16 {
	if b := d.take(2, "u16"); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (d *ckptDecoder) u32() uint32 {
	if b := d.take(4, "u32"); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *ckptDecoder) u64() uint64 {
	if b := d.take(8, "u64"); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *ckptDecoder) f64() float64 { return fromBits(d.u64()) }

func (d *ckptDecoder) bool() bool {
	if b := d.take(1, "bool"); b != nil {
		return b[0] != 0
	}
	return false
}

func (d *ckptDecoder) str() string {
	n := int(d.u16())
	if b := d.take(n, "string"); b != nil {
		return string(b)
	}
	return ""
}

func (d *ckptDecoder) rngState() rng.SourceState {
	var st rng.SourceState
	for i := range st.S {
		st.S[i] = d.u64()
	}
	st.HasSpare = d.bool()
	st.Spare = fromBits(d.u64())
	return st
}

// strings parses a count-prefixed string list. The count is validated
// against the remaining bytes (each entry needs >= 2) before any
// allocation, so a lying count cannot force an oversized slice.
func (d *ckptDecoder) strings() []string {
	n := int(d.u32())
	if n == 0 || d.err != nil {
		return nil
	}
	if len(d.p) < 2*n {
		d.fail("string list")
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *ckptDecoder) roundStat() RoundStat {
	var rs RoundStat
	rs.Round = int(d.u32())
	rs.MeanLoss = d.f64()
	rs.WallSeconds = d.f64()
	rs.BytesDown = d.u64()
	rs.BytesUp = d.u64()
	rs.SubtreeBytesDown = d.u64()
	rs.SubtreeBytesUp = d.u64()
	rs.LeafParticipants = int(d.u32())
	rs.LeafDropped = int(d.u32())
	rs.Selected = d.strings()
	rs.Participants = d.strings()
	rs.Dropped = d.strings()
	if n := d.u32(); n > 0 && d.err == nil {
		if len(d.p) < 4*int(n) {
			d.fail("error map")
			return rs
		}
		rs.Errors = make(map[string]string)
		for i := uint32(0); i < n && d.err == nil; i++ {
			id := d.str()
			if _, dup := rs.Errors[id]; dup {
				d.fail("duplicate error id")
				break
			}
			rs.Errors[id] = d.str()
		}
	}
	rs.HookPanic = d.str()
	return rs
}
