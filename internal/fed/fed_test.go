package fed

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/evfed/evfed/internal/nn"
	"github.com/evfed/evfed/internal/rng"
)

// clientSeries builds a small periodic series with a client-specific phase
// (spatial heterogeneity in miniature).
func clientSeries(n int, phase float64, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.5 + 0.3*math.Sin(2*math.Pi*float64(i)/12+phase) + r.Normal(0, 0.02)
	}
	return out
}

func smallSpec() nn.Spec { return nn.ForecasterSpec(8, 4) }

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Rounds = 2
	cfg.EpochsPerRound = 3
	return cfg
}

func makeClients(t *testing.T, n int) []ClientHandle {
	t.Helper()
	out := make([]ClientHandle, n)
	for i := 0; i < n; i++ {
		c, err := NewClient(
			string(rune('A'+i)),
			smallSpec(),
			clientSeries(150, float64(i), uint64(i+1)),
			12,
			uint64(100+i),
		)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

func TestFedAvgWeighted(t *testing.T) {
	updates := []Update{
		{ClientID: "a", Weights: []float64{1, 2}, NumSamples: 1},
		{ClientID: "b", Weights: []float64{3, 6}, NumSamples: 3},
	}
	avg, err := FedAvg(updates)
	if err != nil {
		t.Fatal(err)
	}
	// (1*1 + 3*3)/4 = 2.5 ; (2*1 + 6*3)/4 = 5
	if math.Abs(avg[0]-2.5) > 1e-12 || math.Abs(avg[1]-5) > 1e-12 {
		t.Fatalf("avg %v", avg)
	}
}

func TestFedAvgErrors(t *testing.T) {
	if _, err := FedAvg(nil); !errors.Is(err, ErrNoClients) {
		t.Fatalf("want ErrNoClients, got %v", err)
	}
	bad := []Update{
		{ClientID: "a", Weights: []float64{1}, NumSamples: 1},
		{ClientID: "b", Weights: []float64{1, 2}, NumSamples: 1},
	}
	if _, err := FedAvg(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	zero := []Update{{ClientID: "a", Weights: []float64{1}, NumSamples: 0}}
	if _, err := FedAvg(zero); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

// FedAvg invariants: idempotent on identical updates; output within the
// convex hull of inputs.
func TestFedAvgProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dim := 1 + r.Intn(20)
		nClients := 1 + r.Intn(5)
		updates := make([]Update, nClients)
		for c := range updates {
			w := make([]float64, dim)
			for i := range w {
				w[i] = r.Normal(0, 1)
			}
			updates[c] = Update{ClientID: "x", Weights: w, NumSamples: 1 + r.Intn(100)}
		}
		avg, err := FedAvg(updates)
		if err != nil {
			return false
		}
		for i := 0; i < dim; i++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, u := range updates {
				lo = math.Min(lo, u.Weights[i])
				hi = math.Max(hi, u.Weights[i])
			}
			if avg[i] < lo-1e-9 || avg[i] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorRun(t *testing.T) {
	clients := makeClients(t, 3)
	co, err := NewCoordinator(smallSpec(), clients, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
	for _, rs := range res.Rounds {
		if len(rs.Participants) != 3 {
			t.Fatalf("round %d participants %v", rs.Round, rs.Participants)
		}
		if rs.MeanLoss <= 0 || math.IsNaN(rs.MeanLoss) {
			t.Fatalf("round %d mean loss %v", rs.Round, rs.MeanLoss)
		}
	}
	// Loss decreases across rounds on a learnable task.
	if res.Rounds[1].MeanLoss >= res.Rounds[0].MeanLoss {
		t.Fatalf("federated loss did not decrease: %v -> %v",
			res.Rounds[0].MeanLoss, res.Rounds[1].MeanLoss)
	}
	m, err := co.GlobalModel(res)
	if err != nil {
		t.Fatal(err)
	}
	got := m.WeightsVector()
	for i := range got {
		if got[i] != res.Global[i] {
			t.Fatal("GlobalModel weights differ from result")
		}
	}
}

func TestCoordinatorDeterministicSequential(t *testing.T) {
	run := func() []float64 {
		clients := makeClients(t, 2)
		cfg := smallConfig(9)
		cfg.Parallel = false
		cfg.WorkersPerClient = 2
		co, err := NewCoordinator(smallSpec(), clients, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := co.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Global
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("federated run not reproducible at weight %d", i)
		}
	}
}

func TestCoordinatorParallelMatchesSequential(t *testing.T) {
	run := func(parallel bool) []float64 {
		clients := makeClients(t, 3)
		cfg := smallConfig(11)
		cfg.Parallel = parallel
		cfg.WorkersPerClient = 1
		co, err := NewCoordinator(smallSpec(), clients, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := co.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Global
	}
	seq := run(false)
	par := run(true)
	// Aggregation order is fixed by client index, so parallel scheduling
	// must not change the result at all.
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("parallel run diverges from sequential at %d", i)
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	clients := makeClients(t, 1)
	if _, err := NewCoordinator(smallSpec(), nil, smallConfig(1)); !errors.Is(err, ErrNoClients) {
		t.Fatalf("want ErrNoClients, got %v", err)
	}
	bad := smallConfig(1)
	bad.Rounds = 0
	if _, err := NewCoordinator(smallSpec(), clients, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	bad2 := smallConfig(1)
	bad2.Failures = &FailurePlan{DropoutProb: 1}
	if _, err := NewCoordinator(smallSpec(), clients, bad2); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestCoordinatorSurvivesDropouts(t *testing.T) {
	clients := makeClients(t, 4)
	cfg := smallConfig(13)
	cfg.Rounds = 4
	cfg.Failures = &FailurePlan{DropoutProb: 0.4}
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, rs := range res.Rounds {
		dropped += len(rs.Dropped)
		if len(rs.Participants)+len(rs.Dropped) != 4 {
			t.Fatalf("round %d accounting: %d + %d != 4",
				rs.Round, len(rs.Participants), len(rs.Dropped))
		}
	}
	if dropped == 0 {
		t.Fatal("failure plan injected no dropouts (seed-dependent; adjust seed)")
	}
	if len(res.Global) == 0 {
		t.Fatal("no global weights produced")
	}
}

func TestClientRejectsBadWeights(t *testing.T) {
	c, err := NewClient("x", smallSpec(), clientSeries(100, 0, 1), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Train([]float64{1, 2, 3}, LocalTrainConfig{Epochs: 1, BatchSize: 8, LearningRate: 0.01})
	if !errors.Is(err, nn.ErrShape) {
		t.Fatalf("want nn.ErrShape, got %v", err)
	}
}

func TestNewClientTooShort(t *testing.T) {
	if _, err := NewClient("x", smallSpec(), make([]float64, 5), 12, 1); err == nil {
		t.Fatal("short series should error")
	}
}

func TestFederatedBeatsIsolatedOnSharedStructure(t *testing.T) {
	// Three clients share the same periodic process with small phase
	// offsets; federated averaging should produce a global model that
	// predicts a held-out client series better than an untrained model.
	clients := makeClients(t, 3)
	cfg := smallConfig(17)
	cfg.Rounds = 3
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	m, err := co.GlobalModel(res)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := nn.Build(smallSpec(), 999)
	if err != nil {
		t.Fatal(err)
	}
	test := clientSeries(100, 0.5, 55)
	evalMSE := func(model *nn.Model) float64 {
		var sum float64
		n := 0
		for i := 12; i < len(test); i++ {
			in := make(nn.Seq, 12)
			for k := 0; k < 12; k++ {
				in[k] = []float64{test[i-12+k]}
			}
			p := model.Predict(in)
			d := p[0][0] - test[i]
			sum += d * d
			n++
		}
		return sum / float64(n)
	}
	if evalMSE(m) >= evalMSE(fresh) {
		t.Fatalf("federated model (%v) no better than untrained (%v)", evalMSE(m), evalMSE(fresh))
	}
}
