package fed

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/evfed/evfed/internal/nn"
)

func TestTCPTransportRoundTrip(t *testing.T) {
	c, err := NewClient("station-1", smallSpec(), clientSeries(150, 0, 1), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClient(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	remote := NewRemoteClient("station-1", srv.Addr())
	n, err := remote.NumSamples()
	if err != nil {
		t.Fatal(err)
	}
	localN, err := c.NumSamples()
	if err != nil {
		t.Fatal(err)
	}
	if n != localN {
		t.Fatalf("remote NumSamples %d != local %d", n, localN)
	}

	// A full training round over the wire.
	global, err := freshWeights(t)
	if err != nil {
		t.Fatal(err)
	}
	u, err := remote.Train(global, LocalTrainConfig{Epochs: 2, BatchSize: 16, LearningRate: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if u.ClientID != "station-1" {
		t.Fatalf("client id %q", u.ClientID)
	}
	if u.NumSamples != localN {
		t.Fatalf("update samples %d", u.NumSamples)
	}
	if len(u.Weights) != len(global) {
		t.Fatalf("weight dim %d != %d", len(u.Weights), len(global))
	}
	changed := false
	for i := range u.Weights {
		if u.Weights[i] != global[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("remote training did not change weights")
	}
}

func freshWeights(t *testing.T) ([]float64, error) {
	t.Helper()
	m, err := nn.Build(smallSpec(), 1)
	if err != nil {
		return nil, err
	}
	return m.WeightsVector(), nil
}

func TestTCPRemoteErrorPropagates(t *testing.T) {
	c, err := NewClient("station-2", smallSpec(), clientSeries(150, 0, 2), 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClient(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	remote := NewRemoteClient("station-2", srv.Addr())
	// Wrong weight dimension must surface as ErrRemote.
	if _, err := remote.Train([]float64{1, 2, 3}, LocalTrainConfig{Epochs: 1, BatchSize: 8, LearningRate: 0.01}); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	remote := NewRemoteClient("ghost", "127.0.0.1:1")
	if _, err := remote.NumSamples(); err == nil {
		t.Fatal("dialing a closed port should error")
	}
}

func TestFederatedRunOverTCP(t *testing.T) {
	// Full federation across three TCP-served clients: the paper's
	// deployment topology in miniature.
	var handles []ClientHandle
	for i := 0; i < 3; i++ {
		c, err := NewClient(string(rune('a'+i)), smallSpec(), clientSeries(150, float64(i), uint64(i+10)), 12, uint64(i+20))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeClient(c, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Stop()
		handles = append(handles, NewRemoteClient(c.ID(), srv.Addr()))
	}
	cfg := smallConfig(31)
	co, err := NewCoordinator(smallSpec(), handles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Global) == 0 {
		t.Fatal("no global weights")
	}
	if res.Rounds[len(res.Rounds)-1].MeanLoss >= res.Rounds[0].MeanLoss {
		t.Fatalf("TCP federation loss did not decrease: %+v", res.Rounds)
	}
}

func TestServerStopIdempotent(t *testing.T) {
	c, err := NewClient("s", smallSpec(), clientSeries(120, 0, 3), 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClient(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	srv.Stop() // must not panic or deadlock
}

func TestServerStopReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		c, err := NewClient("g", smallSpec(), clientSeries(120, 0, 9), 12, 9)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeClient(c, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		remote := NewRemoteClient("g", srv.Addr())
		if _, err := remote.NumSamples(); err != nil {
			t.Fatal(err)
		}
		srv.Stop()
	}
	// Allow exits to settle, then verify no accumulation.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
}

func TestServerHandlesMalformedConnection(t *testing.T) {
	c, err := NewClient("m", smallSpec(), clientSeries(120, 0, 5), 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClient(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	// Garbage bytes must not wedge or crash the server.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not gob")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The server must still answer a well-formed request afterwards.
	remote := NewRemoteClient("m", srv.Addr())
	if _, err := remote.NumSamples(); err != nil {
		t.Fatalf("server wedged after malformed connection: %v", err)
	}
}
