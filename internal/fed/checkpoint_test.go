package fed

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/evfed/evfed/internal/chaos"
	"github.com/evfed/evfed/internal/rng"
)

func sampleCheckpoint() *Checkpoint {
	sr := rng.New(11)
	fr := rng.New(12)
	sr.NormFloat64() // leave a spare deviate in the state
	for i := 0; i < 5; i++ {
		fr.Uint64()
	}
	return &Checkpoint{
		Seed:      99,
		Round:     3,
		Dim:       4,
		Global:    []float64{0.25, -1.5, math.Pi, 0},
		SampleRNG: sr.Snapshot(),
		FailRNG:   fr.Snapshot(),
		DeltaRefs: map[string]bool{"sta-a": true, "sta-b": false},
		Rounds: []RoundStat{
			{Round: 0, Selected: []string{"sta-a", "sta-b"}, Participants: []string{"sta-a"},
				Dropped: []string{"sta-b"}, Errors: map[string]string{"sta-b": "unreachable"},
				MeanLoss: 0.5, WallSeconds: 1.25, BytesDown: 100, BytesUp: 90,
				SubtreeBytesDown: 10, SubtreeBytesUp: 5, LeafParticipants: 1, LeafDropped: 1},
			{Round: 1, Participants: []string{"sta-a", "sta-b"}, MeanLoss: 0.25,
				LeafParticipants: 2, HookPanic: "hook exploded"},
			{Round: 2, Participants: []string{"sta-a"}, MeanLoss: 0.125, LeafParticipants: 1},
		},
		ClientSeconds:    12.5,
		BytesDown:        300,
		BytesUp:          270,
		SubtreeBytesDown: 10,
		SubtreeBytesUp:   5,
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != cp.Seed || got.Round != cp.Round || got.Dim != cp.Dim {
		t.Fatalf("identity mismatch: %+v", got)
	}
	for i := range cp.Global {
		if math.Float64bits(got.Global[i]) != math.Float64bits(cp.Global[i]) {
			t.Fatalf("global[%d]: %v != %v", i, got.Global[i], cp.Global[i])
		}
	}
	if got.SampleRNG != cp.SampleRNG || got.FailRNG != cp.FailRNG {
		t.Fatal("RNG state did not round-trip")
	}
	// Restored streams must continue identically.
	a, b := rng.New(0), rng.New(0)
	a.Restore(cp.SampleRNG)
	b.Restore(got.SampleRNG)
	for i := 0; i < 16; i++ {
		if a.NormFloat64() != b.NormFloat64() {
			t.Fatal("restored RNG streams diverge")
		}
	}
	if len(got.DeltaRefs) != 2 || !got.DeltaRefs["sta-a"] || got.DeltaRefs["sta-b"] {
		t.Fatalf("delta refs: %v", got.DeltaRefs)
	}
	if len(got.Rounds) != 3 {
		t.Fatalf("rounds: %d", len(got.Rounds))
	}
	r0 := got.Rounds[0]
	if r0.Round != 0 || len(r0.Selected) != 2 || r0.Errors["sta-b"] != "unreachable" ||
		r0.BytesDown != 100 || r0.SubtreeBytesUp != 5 || r0.LeafDropped != 1 {
		t.Fatalf("round 0 did not round-trip: %+v", r0)
	}
	if got.Rounds[1].HookPanic != "hook exploded" {
		t.Fatalf("hook panic lost: %+v", got.Rounds[1])
	}
	if got.ClientSeconds != 12.5 || got.BytesDown != 300 || got.SubtreeBytesDown != 10 {
		t.Fatalf("cumulative counters: %+v", got)
	}
}

func TestCheckpointDecodeTypedErrors(t *testing.T) {
	data, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation must yield a typed error, never a panic.
	for n := 0; n < len(data); n++ {
		_, err := DecodeCheckpoint(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if !errors.Is(err, ErrCheckpointTruncated) && !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := DecodeCheckpoint(bad); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	skew := append([]byte(nil), data...)
	skew[4] = CheckpointVersion + 1
	if _, err := DecodeCheckpoint(skew); !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("version skew: %v", err)
	}

	// Any single flipped payload byte must fail the CRC.
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x40
	if _, err := DecodeCheckpoint(flip); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("flipped byte: %v", err)
	}

	long := append(append([]byte(nil), data...), 0xee)
	if _, err := DecodeCheckpoint(long); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestSaveLatestAndPrune(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LatestCheckpoint(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v", err)
	}

	cp := sampleCheckpoint()
	for r := 1; r <= 5; r++ {
		cp.Round = r
		if _, err := SaveCheckpoint(dir, cp); err != nil {
			t.Fatal(err)
		}
		pruneCheckpoints(dir, 3)
	}
	files, err := checkpointFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("retain 3: %d files %v", len(files), files)
	}
	got, path, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 5 || filepath.Base(path) != "ckpt-000005.evck" {
		t.Fatalf("latest: round %d from %s", got.Round, path)
	}

	// Corrupting the newest file falls back to the previous good one.
	if err := os.WriteFile(path, []byte("EVCKgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err = LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 4 {
		t.Fatalf("fallback: round %d", got.Round)
	}

	// No leftover temp files after atomic saves.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}
}

func TestResumeMismatchRejected(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Rounds = 2
	cfg.EpochsPerRound = 1
	cp := sampleCheckpoint()
	cp.Seed = cfg.Seed + 1 // wrong federation
	cfg.Resume = cp
	co, err := NewCoordinator(smallSpec(), makeClients(t, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("want ErrCheckpointMismatch, got %v", err)
	}
}

// TestCheckpointResumeParity is the tentpole guarantee: a coordinator
// killed mid-run and resumed from its last durable checkpoint produces a
// bit-identical final global to an uninterrupted run — for both
// aggregation rules, with client sampling active so the RNG state restore
// is load-bearing, and for both crash flavors (before the checkpoint →
// the round replays; after → it does not).
func TestCheckpointResumeParity(t *testing.T) {
	const rounds = 8
	aggs := []struct {
		name string
		agg  Aggregator
	}{{"mean", MeanAggregator{}}, {"uniform", UniformAggregator{}}}
	for _, tc := range aggs {
		t.Run(tc.name, func(t *testing.T) {
			baseCfg := func(dir string) Config {
				cfg := smallConfig(77)
				cfg.Rounds = rounds
				cfg.EpochsPerRound = 1
				cfg.ClientFraction = 0.5
				cfg.Aggregator = tc.agg
				if dir != "" {
					cfg.Checkpoint = CheckpointConfig{Dir: dir, Every: 1}
				}
				return cfg
			}
			coA, err := NewCoordinator(smallSpec(), makeClients(t, 6), baseCfg(""))
			if err != nil {
				t.Fatal(err)
			}
			resA, err := coA.Run()
			if err != nil {
				t.Fatal(err)
			}

			crashes := []struct {
				point     string
				wantRound int // completed rounds in the surviving checkpoint
			}{
				{CrashAfterAggregate, 4},  // round 4 aggregated but not durable → replays
				{CrashAfterCheckpoint, 5}, // round 4 durable → not replayed
			}
			for _, crash := range crashes {
				t.Run(crash.point, func(t *testing.T) {
					dir := t.TempDir()
					cfg := baseCfg(dir)
					cfg.CrashPoint = chaos.CrashOnce(crash.point, 5) // dies during round index 4
					co, err := NewCoordinator(smallSpec(), makeClients(t, 6), cfg)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := co.Run(); !errors.Is(err, chaos.ErrCrash) {
						t.Fatalf("want injected crash, got %v", err)
					}

					cp, _, err := LatestCheckpoint(dir)
					if err != nil {
						t.Fatal(err)
					}
					if cp.Round != crash.wantRound {
						t.Fatalf("surviving checkpoint at round %d, want %d", cp.Round, crash.wantRound)
					}

					// A fresh process: new clients, new coordinator, resumed state.
					cfg2 := baseCfg(dir)
					cfg2.Resume = cp
					co2, err := NewCoordinator(smallSpec(), makeClients(t, 6), cfg2)
					if err != nil {
						t.Fatal(err)
					}
					res, err := co2.Run()
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Rounds) != rounds {
						t.Fatalf("resumed history has %d rounds, want %d", len(res.Rounds), rounds)
					}
					for i, rs := range res.Rounds {
						if rs.Round != i {
							t.Fatalf("round history not contiguous at %d: %d", i, rs.Round)
						}
					}
					for i := range res.Global {
						if math.Float64bits(res.Global[i]) != math.Float64bits(resA.Global[i]) {
							t.Fatalf("weight %d differs after resume: %v != %v",
								i, res.Global[i], resA.Global[i])
						}
					}
				})
			}
		})
	}
}

// TestOnRoundPanicRecovered: a faulty rollout/checkpoint hook must not
// kill the coordinator mid-federation — the panic is recovered, recorded
// on the round's stat, and later rounds still reach the hook.
func TestOnRoundPanicRecovered(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Rounds = 3
	cfg.EpochsPerRound = 1
	calls := 0
	cfg.OnRound = func(stat RoundStat, global []float64) {
		calls++
		if stat.Round == 1 {
			panic("hook exploded")
		}
	}
	co, err := NewCoordinator(smallSpec(), makeClients(t, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatalf("a panicking hook killed the run: %v", err)
	}
	if calls != 3 {
		t.Fatalf("hook called %d times, want 3", calls)
	}
	if res.Rounds[1].HookPanic != "hook exploded" {
		t.Fatalf("round 1 HookPanic = %q", res.Rounds[1].HookPanic)
	}
	if res.Rounds[0].HookPanic != "" || res.Rounds[2].HookPanic != "" {
		t.Fatalf("healthy rounds carry HookPanic: %+v", res.Rounds)
	}
}

// TestNonFiniteUpdateRejected: an update carrying NaN weights is dropped
// as that client's round error instead of poisoning the global.
func TestNonFiniteUpdateRejected(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Rounds = 1
	cfg.EpochsPerRound = 1
	cfg.TolerateClientErrors = true
	clients := makeClients(t, 3)
	poison := &funcClient{id: "poison", train: func(global []float64, _ LocalTrainConfig) (Update, error) {
		w := make([]float64, len(global))
		copy(w, global)
		w[0] = math.NaN()
		return Update{ClientID: "poison", Weights: w, NumSamples: 10, FinalLoss: 0.1}, nil
	}}
	co, err := NewCoordinator(smallSpec(), append(clients, poison), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Rounds[0]
	if len(rs.Participants) != 3 || len(rs.Dropped) != 1 {
		t.Fatalf("participants %v dropped %v", rs.Participants, rs.Dropped)
	}
	if rs.Errors["poison"] == "" {
		t.Fatalf("no recorded error for the poisoned client: %v", rs.Errors)
	}
	for i, v := range res.Global {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("global[%d] is non-finite: %v", i, v)
		}
	}

	// Without tolerance the same update is fatal and typed.
	cfg.TolerateClientErrors = false
	co2, err := NewCoordinator(smallSpec(), append(makeClients(t, 3), poison), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co2.Run(); !errors.Is(err, ErrNonFiniteUpdate) {
		t.Fatalf("want ErrNonFiniteUpdate, got %v", err)
	}
}

// funcClient is a minimal ClientHandle for injecting hostile updates.
type funcClient struct {
	id    string
	train func([]float64, LocalTrainConfig) (Update, error)
}

func (f *funcClient) ID() string               { return f.id }
func (f *funcClient) NumSamples() (int, error) { return 10, nil }
func (f *funcClient) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	return f.train(global, cfg)
}
