package fed

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// failingHandle errors on every Train call after failAfter successes.
type failingHandle struct {
	inner     ClientHandle
	calls     int
	failAfter int
}

func (f *failingHandle) ID() string { return f.inner.ID() }

func (f *failingHandle) NumSamples() (int, error) { return f.inner.NumSamples() }

func (f *failingHandle) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	f.calls++
	if f.calls > f.failAfter {
		return Update{}, errors.New("station offline")
	}
	return f.inner.Train(global, cfg)
}

func TestCoordinatorAbortsOnClientErrorByDefault(t *testing.T) {
	clients := makeClients(t, 2)
	clients[1] = &failingHandle{inner: clients[1], failAfter: 0}
	co, err := NewCoordinator(smallSpec(), clients, smallConfig(41))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(); err == nil {
		t.Fatal("client error should abort without TolerateClientErrors")
	}
}

func TestCoordinatorToleratesClientErrors(t *testing.T) {
	clients := makeClients(t, 3)
	// Client C survives round 0 then goes offline permanently.
	clients[2] = &failingHandle{inner: clients[2], failAfter: 1}
	cfg := smallConfig(43)
	cfg.Rounds = 3
	cfg.TolerateClientErrors = true
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
	if len(res.Rounds[0].Participants) != 3 {
		t.Fatalf("round 0 participants %v", res.Rounds[0].Participants)
	}
	for _, rs := range res.Rounds[1:] {
		if len(rs.Participants) != 2 {
			t.Fatalf("round %d participants %v (offline client not dropped)", rs.Round, rs.Participants)
		}
		if len(rs.Dropped) != 1 {
			t.Fatalf("round %d dropped %v", rs.Round, rs.Dropped)
		}
	}
	if len(res.Global) == 0 {
		t.Fatal("no global model despite surviving clients")
	}
}

func TestFederationSurvivesRemoteServerStop(t *testing.T) {
	// Two live TCP stations plus one that is stopped before the run: with
	// TolerateClientErrors the federation completes on the survivors.
	var handles []ClientHandle
	for i := 0; i < 3; i++ {
		c, err := NewClient(string(rune('p'+i)), smallSpec(), clientSeries(150, float64(i), uint64(i+70)), 12, uint64(i+80))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeClient(c, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			srv.Stop() // station 2 is offline for the whole run
		} else {
			defer srv.Stop()
		}
		rc := NewRemoteClient(c.ID(), srv.Addr())
		rc.DialTimeout = 500 * time.Millisecond
		handles = append(handles, rc)
	}
	cfg := smallConfig(47)
	cfg.TolerateClientErrors = true
	co, err := NewCoordinator(smallSpec(), handles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range res.Rounds {
		if len(rs.Participants) != 2 {
			t.Fatalf("round %d participants %v", rs.Round, rs.Participants)
		}
	}
}

// TestResilienceHungStationCutByRoundDeadline is the §III-F acceptance
// scenario: one station accepts the training call and never answers, and
// no per-call read deadline is armed — the coordinator's round deadline
// alone must cut it off so the federation completes on the survivors.
func TestResilienceHungStationCutByRoundDeadline(t *testing.T) {
	skipIfShort(t)
	clients := makeClients(t, 2)
	hung := newHangListener(t)
	rc := NewRemoteClient("hung", hung.Addr())
	rc.ReadTimeout = 0                       // wait forever: only the round deadline saves us
	rc.ProbeTimeout = 200 * time.Millisecond // preflight must not hang either
	rc.MaxRetries = 0
	handles := append(clients, rc)

	const deadline = 2 * time.Second
	cfg := smallConfig(61)
	cfg.Rounds = 2
	cfg.EpochsPerRound = 1
	cfg.TolerateClientErrors = true
	cfg.RoundDeadline = deadline
	co, err := NewCoordinator(smallSpec(), handles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Duration(cfg.Rounds)*deadline+2*time.Second {
		t.Fatalf("run did not respect round deadlines: %v", elapsed)
	}
	for _, rs := range res.Rounds {
		if len(rs.Participants) != 2 {
			t.Fatalf("round %d participants %v", rs.Round, rs.Participants)
		}
		if len(rs.Dropped) != 1 || rs.Dropped[0] != "hung" {
			t.Fatalf("round %d dropped %v, want [hung]", rs.Round, rs.Dropped)
		}
		if rs.WallSeconds > (deadline + time.Second).Seconds() {
			t.Fatalf("round %d overran its deadline: %.2fs", rs.Round, rs.WallSeconds)
		}
	}
	if len(res.Global) == 0 {
		t.Fatal("no global model despite surviving stations")
	}
}

// TestResilienceHungStationCutByClientDeadline drops the hung station via
// the RemoteClient read deadline instead of the round deadline.
func TestResilienceHungStationCutByClientDeadline(t *testing.T) {
	skipIfShort(t)
	clients := makeClients(t, 2)
	hung := newHangListener(t)
	rc := NewRemoteClient("hung", hung.Addr())
	rc.ReadTimeout = 200 * time.Millisecond
	rc.ProbeTimeout = 200 * time.Millisecond
	rc.MaxRetries = 1
	rc.RetryBackoff = 20 * time.Millisecond
	handles := append(clients, rc)

	cfg := smallConfig(67)
	cfg.Rounds = 2
	cfg.EpochsPerRound = 1
	cfg.TolerateClientErrors = true
	co, err := NewCoordinator(smallSpec(), handles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range res.Rounds {
		if len(rs.Participants) != 2 {
			t.Fatalf("round %d participants %v", rs.Round, rs.Participants)
		}
		if len(rs.Dropped) != 1 || rs.Dropped[0] != "hung" {
			t.Fatalf("round %d dropped %v, want [hung]", rs.Round, rs.Dropped)
		}
	}
}

// slowHandle sleeps through every Train call, simulating a station whose
// compute (not its network) is the bottleneck. It deliberately does not
// implement Prober, so preflight cannot reject it early.
type slowHandle struct {
	inner ClientHandle
	delay time.Duration
}

func (s *slowHandle) ID() string               { return s.inner.ID() }
func (s *slowHandle) NumSamples() (int, error) { return s.inner.NumSamples() }
func (s *slowHandle) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	time.Sleep(s.delay)
	return s.inner.Train(global, cfg)
}

// TestResilienceRoundDeadlineAbortsWithoutTolerance verifies the strict
// mode: a blown deadline is fatal when errors are not tolerated.
func TestResilienceRoundDeadlineAbortsWithoutTolerance(t *testing.T) {
	skipIfShort(t)
	clients := makeClients(t, 2)
	clients[1] = &slowHandle{inner: clients[1], delay: 10 * time.Second}

	cfg := smallConfig(71)
	cfg.Rounds = 1
	cfg.EpochsPerRound = 1
	cfg.RoundDeadline = 500 * time.Millisecond
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(); !errors.Is(err, ErrRoundDeadline) {
		t.Fatalf("want ErrRoundDeadline, got %v", err)
	}
}

// TestResilienceSequentialRoundDeadline verifies the deadline also cuts
// off an in-flight hung client when Parallel is off, and that the drop
// reason is recorded for the operator.
func TestResilienceSequentialRoundDeadline(t *testing.T) {
	skipIfShort(t)
	clients := makeClients(t, 2)
	clients[1] = &slowHandle{inner: clients[1], delay: 10 * time.Second}

	cfg := smallConfig(103)
	cfg.Parallel = false
	cfg.Rounds = 2
	cfg.EpochsPerRound = 1
	cfg.TolerateClientErrors = true
	cfg.RoundDeadline = 500 * time.Millisecond
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("sequential run ignored the round deadline: %v", elapsed)
	}
	for _, rs := range res.Rounds {
		if len(rs.Participants) != 1 {
			t.Fatalf("round %d participants %v", rs.Round, rs.Participants)
		}
		if len(rs.Dropped) != 1 {
			t.Fatalf("round %d dropped %v", rs.Round, rs.Dropped)
		}
		if reason := rs.Errors[rs.Dropped[0]]; reason != ErrRoundDeadline.Error() {
			t.Fatalf("round %d drop reason %q, want round-deadline", rs.Round, reason)
		}
	}
}

// TestResilienceServerStoppedMidRun stops one station while the
// federation is in flight; with tolerance the run completes on the
// survivors and the stopped station ends up dropped.
func TestResilienceServerStoppedMidRun(t *testing.T) {
	skipIfShort(t)
	var handles []ClientHandle
	var victim *ClientServer
	for i := 0; i < 3; i++ {
		c, err := NewClient(string(rune('q'+i)), smallSpec(), clientSeries(150, float64(i), uint64(i+90)), 12, uint64(i+95))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeClient(c, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			victim = srv
		} else {
			defer srv.Stop()
		}
		rc := NewRemoteClient(c.ID(), srv.Addr())
		rc.DialTimeout = 500 * time.Millisecond
		rc.MaxRetries = 1
		rc.RetryBackoff = 20 * time.Millisecond
		handles = append(handles, rc)
	}
	cfg := smallConfig(73)
	cfg.Rounds = 3
	cfg.TolerateClientErrors = true
	// Stretch every round past the victim's stop time so the stop lands
	// mid-run (tiny test models otherwise finish all rounds in tens of ms).
	cfg.Failures = &FailurePlan{StragglerProb: 1, StragglerDelay: 150 * time.Millisecond}
	co, err := NewCoordinator(smallSpec(), handles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(200 * time.Millisecond)
		victim.Stop()
	}()
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
	last := res.Rounds[len(res.Rounds)-1]
	if len(last.Participants) != 2 {
		t.Fatalf("final round participants %v (stopped station not dropped)", last.Participants)
	}
	if len(res.Global) == 0 {
		t.Fatal("no global model")
	}
}

// TestResilienceConcurrentStopAccept hammers a server with connections
// while stopping it; under -race this proves accept tracking cannot race
// Stop's WaitGroup wait.
func TestResilienceConcurrentStopAccept(t *testing.T) {
	c, err := NewClient("race", smallSpec(), clientSeries(120, 0, 11), 12, 11)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeClient(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return // listener closed
				}
				conn.Close()
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	srv.Stop()
	wg.Wait()
	srv.Stop() // still idempotent after the storm
}

func TestStragglerDelayApplied(t *testing.T) {
	clients := makeClients(t, 2)
	cfg := smallConfig(53)
	cfg.Rounds = 1
	cfg.EpochsPerRound = 1
	cfg.Failures = &FailurePlan{StragglerProb: 1, StragglerDelay: 150 * time.Millisecond}
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := co.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("straggler delay not applied: run took %v", elapsed)
	}
}
