package fed

import (
	"errors"
	"testing"
	"time"
)

// failingHandle errors on every Train call after failAfter successes.
type failingHandle struct {
	inner     ClientHandle
	calls     int
	failAfter int
}

func (f *failingHandle) ID() string { return f.inner.ID() }

func (f *failingHandle) NumSamples() (int, error) { return f.inner.NumSamples() }

func (f *failingHandle) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	f.calls++
	if f.calls > f.failAfter {
		return Update{}, errors.New("station offline")
	}
	return f.inner.Train(global, cfg)
}

func TestCoordinatorAbortsOnClientErrorByDefault(t *testing.T) {
	clients := makeClients(t, 2)
	clients[1] = &failingHandle{inner: clients[1], failAfter: 0}
	co, err := NewCoordinator(smallSpec(), clients, smallConfig(41))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(); err == nil {
		t.Fatal("client error should abort without TolerateClientErrors")
	}
}

func TestCoordinatorToleratesClientErrors(t *testing.T) {
	clients := makeClients(t, 3)
	// Client C survives round 0 then goes offline permanently.
	clients[2] = &failingHandle{inner: clients[2], failAfter: 1}
	cfg := smallConfig(43)
	cfg.Rounds = 3
	cfg.TolerateClientErrors = true
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
	if len(res.Rounds[0].Participants) != 3 {
		t.Fatalf("round 0 participants %v", res.Rounds[0].Participants)
	}
	for _, rs := range res.Rounds[1:] {
		if len(rs.Participants) != 2 {
			t.Fatalf("round %d participants %v (offline client not dropped)", rs.Round, rs.Participants)
		}
		if len(rs.Dropped) != 1 {
			t.Fatalf("round %d dropped %v", rs.Round, rs.Dropped)
		}
	}
	if len(res.Global) == 0 {
		t.Fatal("no global model despite surviving clients")
	}
}

func TestFederationSurvivesRemoteServerStop(t *testing.T) {
	// Two live TCP stations plus one that is stopped before the run: with
	// TolerateClientErrors the federation completes on the survivors.
	var handles []ClientHandle
	for i := 0; i < 3; i++ {
		c, err := NewClient(string(rune('p'+i)), smallSpec(), clientSeries(150, float64(i), uint64(i+70)), 12, uint64(i+80))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeClient(c, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			srv.Stop() // station 2 is offline for the whole run
		} else {
			defer srv.Stop()
		}
		rc := NewRemoteClient(c.ID(), srv.Addr())
		rc.DialTimeout = 500 * time.Millisecond
		handles = append(handles, rc)
	}
	cfg := smallConfig(47)
	cfg.TolerateClientErrors = true
	co, err := NewCoordinator(smallSpec(), handles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range res.Rounds {
		if len(rs.Participants) != 2 {
			t.Fatalf("round %d participants %v", rs.Round, rs.Participants)
		}
	}
}

func TestStragglerDelayApplied(t *testing.T) {
	clients := makeClients(t, 2)
	cfg := smallConfig(53)
	cfg.Rounds = 1
	cfg.EpochsPerRound = 1
	cfg.Failures = &FailurePlan{StragglerProb: 1, StragglerDelay: 150 * time.Millisecond}
	co, err := NewCoordinator(smallSpec(), clients, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := co.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("straggler delay not applied: run took %v", elapsed)
	}
}
