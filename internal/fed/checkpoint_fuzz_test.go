package fed

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCheckpointDecode hammers the checkpoint decoder with arbitrary
// bytes: truncated, corrupted, and version-skewed files must come back as
// typed errors — never a panic, and never an allocation sized by an
// attacker-controlled count rather than the input itself. A valid
// checkpoint must survive a decode→encode→decode round trip bit-for-bit.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("EVCK"))
	skew := append([]byte(nil), valid...)
	skew[4] = 0xff
	f.Add(skew)
	flip := append([]byte(nil), valid...)
	flip[len(flip)-1] ^= 0x01 // CRC damage
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCheckpointTruncated) &&
				!errors.Is(err, ErrCheckpointCorrupt) &&
				!errors.Is(err, ErrCheckpointVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input: re-encoding must reproduce the exact file (the
		// format has one canonical encoding per state).
		out, err := EncodeCheckpoint(cp)
		if err != nil {
			t.Fatalf("decoded checkpoint failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(data), len(out))
		}
	})
}
