package fed

import (
	"fmt"
	"strings"

	"github.com/evfed/evfed/internal/rng"
)

// Byzantine client attacks: the model-plane half of the paper's threat
// model. Where internal/attack corrupts the data a station observes,
// these corrupt what a compromised station *sends* — the weight update
// itself. A MaliciousClient wraps any honest ClientHandle and tampers
// with its update after local training completes, so the poisoned vector
// flows through the exact round machinery an honest one does: coordinator
// scheduling, the wire codec (including q8 delta quantization when a
// malicious station is served over TCP), edge partial aggregation, and
// the configured aggregation rule. Nothing downstream can tell a wrapped
// handle from an honest station except by the arithmetic of its update —
// which is precisely what robust aggregators must survive.

// ByzantineKind selects the malicious update transformation.
type ByzantineKind uint8

// Supported attacks, in increasing order of coordination.
const (
	// ByzSignFlip reverses the training signal: the update becomes
	// global − Scale·(update − global), i.e. gradient ascent from the
	// aggregate's point of view.
	ByzSignFlip ByzantineKind = iota
	// ByzScaledPoison amplifies the honest delta by Scale, the classic
	// model-replacement boost: one attacker tries to drag the mean to its
	// own (scaled) solution.
	ByzScaledPoison
	// ByzCollude replaces the delta with a direction every colluder
	// derives identically from (CollusionSeed, round): the subset submits
	// byte-identical poisoned vectors, stacking their mass on one point of
	// each coordinate's order statistics — the worst case for rank-based
	// aggregators, which single uncoordinated outliers cannot reach.
	ByzCollude
)

// String names the attack as ParseByzantineKind accepts it.
func (k ByzantineKind) String() string {
	switch k {
	case ByzSignFlip:
		return "sign-flip"
	case ByzScaledPoison:
		return "scaled-poison"
	case ByzCollude:
		return "collude"
	default:
		return fmt.Sprintf("byzantine(%d)", uint8(k))
	}
}

// ParseByzantineKind maps a flag string to a ByzantineKind.
func ParseByzantineKind(s string) (ByzantineKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sign-flip", "signflip":
		return ByzSignFlip, nil
	case "scaled-poison", "poison":
		return ByzScaledPoison, nil
	case "collude", "collusion":
		return ByzCollude, nil
	}
	return 0, fmt.Errorf("%w: unknown byzantine kind %q", ErrBadConfig, s)
}

// ByzantineConfig parameterizes a malicious client.
type ByzantineConfig struct {
	// Kind is the update transformation.
	Kind ByzantineKind
	// Scale tunes the attack's magnitude. Zero selects the kind's
	// default: 1 for ByzSignFlip (exact reversal), 10 for ByzScaledPoison
	// (strong model replacement), 0.5 for ByzCollude (per-coordinate
	// standard deviation of the common poison direction).
	Scale float64
	// CollusionSeed derives ByzCollude's common direction. Every member
	// of a colluding subset must share the value; members with different
	// seeds degrade into uncoordinated noise attackers.
	CollusionSeed uint64
}

func (c ByzantineConfig) withDefaults() (ByzantineConfig, error) {
	if c.Kind > ByzCollude {
		return c, fmt.Errorf("%w: byzantine kind %d", ErrBadConfig, c.Kind)
	}
	if c.Scale < 0 {
		return c, fmt.Errorf("%w: byzantine scale %v", ErrBadConfig, c.Scale)
	}
	if c.Scale == 0 {
		switch c.Kind {
		case ByzSignFlip:
			c.Scale = 1
		case ByzScaledPoison:
			c.Scale = 10
		case ByzCollude:
			c.Scale = 0.5
		}
	}
	return c, nil
}

// MaliciousClient wraps an honest ClientHandle and corrupts its updates.
// It implements ClientHandle and Prober, so it can sit anywhere a station
// can: in a flat coordinator's pool, under an edge aggregator, or behind
// a TCP server (ServeMaliciousClient) — the corruption always rides the
// real aggregation path.
type MaliciousClient struct {
	inner ClientHandle
	cfg   ByzantineConfig
}

var (
	_ ClientHandle = (*MaliciousClient)(nil)
	_ Prober       = (*MaliciousClient)(nil)
)

// NewMaliciousClient validates the configuration and wraps inner.
func NewMaliciousClient(inner ClientHandle, cfg ByzantineConfig) (*MaliciousClient, error) {
	if inner == nil {
		return nil, fmt.Errorf("%w: nil inner client", ErrBadConfig)
	}
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &MaliciousClient{inner: inner, cfg: full}, nil
}

// ID implements ClientHandle: a compromised station keeps its identity.
func (m *MaliciousClient) ID() string { return m.inner.ID() }

// NumSamples implements ClientHandle.
func (m *MaliciousClient) NumSamples() (int, error) { return m.inner.NumSamples() }

// Hello implements Prober by forwarding to the wrapped handle — a
// compromised station passes preflight exactly like an honest one. A
// probe-incapable inner handle reports an error (wrap a *Client or
// RemoteClient for preflighted federations).
func (m *MaliciousClient) Hello() (HelloInfo, error) {
	if p, ok := m.inner.(Prober); ok {
		return p.Hello()
	}
	return HelloInfo{}, fmt.Errorf("%w: malicious wrapper around non-probing client %s", ErrBadConfig, m.ID())
}

// Train implements ClientHandle: honest local training first (the attack
// model is a compromised sender, not a broken trainer), then the
// configured corruption of the returned weight vector. The update's
// metadata (sample count, loss) is left honest — a poisoned update that
// also lies about its loss would be trivially flaggable.
func (m *MaliciousClient) Train(global []float64, cfg LocalTrainConfig) (Update, error) {
	u, err := m.inner.Train(global, cfg)
	if err != nil {
		return u, err
	}
	if len(u.Weights) != len(global) {
		return u, fmt.Errorf("%w: malicious client %s: update dim %d != %d",
			ErrBadConfig, m.ID(), len(u.Weights), len(global))
	}
	switch m.cfg.Kind {
	case ByzSignFlip:
		for i, g := range global {
			u.Weights[i] = g - m.cfg.Scale*(u.Weights[i]-g)
		}
	case ByzScaledPoison:
		for i, g := range global {
			u.Weights[i] = g + m.cfg.Scale*(u.Weights[i]-g)
		}
	case ByzCollude:
		dir := collusionDirection(m.cfg.CollusionSeed, cfg.Round, len(global), m.cfg.Scale)
		for i, g := range global {
			u.Weights[i] = g + dir[i]
		}
	}
	return u, nil
}

// collusionDirection derives the colluding subset's common poison delta
// for a round. It is a pure function of (seed, round, dim, scale): each
// member computes it independently and they agree bit-for-bit, with no
// shared state to synchronize — exactly how real colluders with a shared
// key would coordinate offline.
func collusionDirection(seed uint64, round, dim int, scale float64) []float64 {
	r := rng.New(seed ^ (uint64(round+1) * 0x9e3779b97f4a7c15))
	dir := make([]float64, dim)
	for i := range dir {
		dir[i] = scale * r.NormFloat64()
	}
	return dir
}

// ServeMaliciousClient exposes a malicious wrapper over TCP with the
// leaf-station protocol, so poisoned updates traverse the real wire path:
// framing, uplink codec (including q8 delta quantization), persistent
// connections and all. Stop must be called to release the listener.
func ServeMaliciousClient(m *MaliciousClient, addr string, scfg ServerConfig) (*ClientServer, error) {
	return servePeer(clientPeer{c: m}, addr, scfg)
}
