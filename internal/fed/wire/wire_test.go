package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"github.com/evfed/evfed/internal/rng"
)

// pipeConn joins a read buffer and a write buffer into an io.ReadWriter.
type pipeConn struct {
	r io.Reader
	w io.Writer
}

func (p pipeConn) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p pipeConn) Write(b []byte) (int, error) { return p.w.Write(b) }

func randomVec(n int, seed uint64) []float64 {
	r := rng.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Normal(0, 1)
	}
	return v
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	out := NewConn(pipeConn{r: bytes.NewReader(nil), w: &buf})
	ok := HelloOK{StationID: "station-9", ModelDim: 1234, NumSamples: 56}
	if err := out.WriteFrame(MsgHelloOK, func(b []byte) ([]byte, error) {
		return AppendHelloOK(b, ok)
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), HelloOKBytes(len(ok.StationID)); got != want {
		t.Fatalf("frame size %d, HelloOKBytes says %d", got, want)
	}
	in := NewConn(pipeConn{r: bytes.NewReader(buf.Bytes()), w: io.Discard})
	fr, err := in.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Version != Version || fr.Type != MsgHelloOK {
		t.Fatalf("frame %+v", fr)
	}
	got, err := ParseHelloOK(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != ok {
		t.Fatalf("got %+v want %+v", got, ok)
	}
}

func TestTrainFrameRoundTripAllCodecs(t *testing.T) {
	const dim = 5000 // spans two q8 chunks
	global := randomVec(dim, 1)
	ref := randomVec(dim, 2)
	for i := range ref {
		ref[i] = global[i] + 0.01*ref[i] // a plausible previous-round reference
	}
	for _, codec := range []VecCodec{VecF64, VecF32, VecQ8} {
		var buf bytes.Buffer
		out := NewConn(pipeConn{r: bytes.NewReader(nil), w: &buf})
		tr := Train{
			Round: 3, Epochs: 10, BatchSize: 32, Workers: 2,
			LearningRate: 1e-3, ProximalMu: 0.1, PrivacyClip: 2, PrivacyNoise: 0.5,
			UpdateCodec: codec,
		}
		recon := make([]float64, dim)
		if err := out.WriteFrame(MsgTrain, func(b []byte) ([]byte, error) {
			b = AppendTrain(b, tr)
			return AppendVector(b, codec, global, ref, recon)
		}); err != nil {
			t.Fatal(err)
		}
		if got, want := buf.Len(), TrainBytes(codec, dim); got != want {
			t.Fatalf("%v: frame size %d, TrainBytes says %d", codec, got, want)
		}
		in := NewConn(pipeConn{r: bytes.NewReader(buf.Bytes()), w: io.Discard})
		fr, err := in.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		gotTr, rest, err := ParseTrain(fr.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if gotTr != tr {
			t.Fatalf("%v: train meta %+v want %+v", codec, gotTr, tr)
		}
		dec, rest, err := DecodeVector(rest, nil, ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d trailing bytes", codec, len(rest))
		}
		// The decoder must land exactly on the sender-side reconstruction.
		for i := range dec {
			if dec[i] != recon[i] {
				t.Fatalf("%v: decode[%d]=%v, sender recon %v", codec, i, dec[i], recon[i])
			}
		}
	}
}

func TestQ8ErrorBound(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(9000)
		ref := randomVec(n, uint64(trial))
		v := make([]float64, n)
		scale := math.Pow(10, float64(r.Intn(7))-3) // deltas from 1e-3 to 1e3
		for i := range v {
			v[i] = ref[i] + scale*r.Normal(0, 1)
		}
		enc, err := AppendVector(nil, VecQ8, v, ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := DecodeVector(enc, nil, ref)
		if err != nil {
			t.Fatal(err)
		}
		// Per-chunk bound: |err| ≤ s/2 (+ a whisker for the float32 scale
		// rounding at the clamp boundary).
		for off := 0; off < n; off += q8Chunk {
			end := off + q8Chunk
			if end > n {
				end = n
			}
			var maxAbs float64
			for i := off; i < end; i++ {
				if d := math.Abs(v[i] - ref[i]); d > maxAbs {
					maxAbs = d
				}
			}
			s := float64(float32(maxAbs / 127))
			bound := s/2 + maxAbs*1e-7 + 1e-300
			for i := off; i < end; i++ {
				if e := math.Abs(dec[i] - v[i]); e > bound {
					t.Fatalf("trial %d coord %d: error %v exceeds bound %v (scale %v)", trial, i, e, bound, s)
				}
			}
		}
	}
}

func TestQ8ZeroDelta(t *testing.T) {
	ref := randomVec(100, 3)
	enc, err := AppendVector(nil, VecQ8, ref, ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecodeVector(enc, nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if dec[i] != ref[i] {
			t.Fatalf("zero delta not exact at %d: %v vs %v", i, dec[i], ref[i])
		}
	}
}

func TestRoundTripHelpersMatchWire(t *testing.T) {
	const n = 6000
	v := randomVec(n, 11)
	ref := randomVec(n, 12)

	viaWire := func(codec VecCodec) []float64 {
		enc, err := AppendVector(nil, codec, v, ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := DecodeVector(enc, nil, ref)
		if err != nil {
			t.Fatal(err)
		}
		return dec
	}

	f32 := append([]float64(nil), v...)
	RoundTripF32(f32)
	for i, want := range viaWire(VecF32) {
		if f32[i] != want {
			t.Fatalf("RoundTripF32 diverges from wire at %d", i)
		}
	}
	q8 := append([]float64(nil), v...)
	if err := RoundTripQ8(q8, ref); err != nil {
		t.Fatal(err)
	}
	for i, want := range viaWire(VecQ8) {
		if q8[i] != want {
			t.Fatalf("RoundTripQ8 diverges from wire at %d", i)
		}
	}
}

func TestVectorBytesExact(t *testing.T) {
	ref := randomVec(5000, 4)
	v := randomVec(5000, 5)
	for _, codec := range []VecCodec{VecF64, VecF32, VecQ8} {
		for _, n := range []int{1, 100, 4096, 4097, 5000} {
			enc, err := AppendVector(nil, codec, v[:n], ref[:n], nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(enc) != VectorBytes(codec, n) {
				t.Fatalf("%v n=%d: encoded %d bytes, VectorBytes says %d",
					codec, n, len(enc), VectorBytes(codec, n))
			}
		}
	}
}

func TestQ8RequiresRef(t *testing.T) {
	v := randomVec(10, 6)
	if _, err := AppendVector(nil, VecQ8, v, nil, nil); !errors.Is(err, ErrNoRef) {
		t.Fatalf("encode without ref: %v", err)
	}
	enc, err := AppendVector(nil, VecQ8, v, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeVector(enc, nil, nil); !errors.Is(err, ErrNoRef) {
		t.Fatalf("decode without ref: %v", err)
	}
	short := randomVec(5, 6)
	if _, _, err := DecodeVector(enc, nil, short); !errors.Is(err, ErrNoRef) {
		t.Fatalf("decode with short ref: %v", err)
	}
}

// A malformed vector header must not size the destination from the
// attacker-controlled length field: a 5-byte payload claiming 2^32-1
// elements (with an unknown codec byte, which VectorBytes sizes most
// cheaply) previously attempted a ~32 GiB allocation.
func TestDecodeVectorRejectsLyingLength(t *testing.T) {
	for _, codec := range []byte{0xff, byte(VecF64), byte(VecF32), byte(VecQ8)} {
		p := []byte{codec, 0xff, 0xff, 0xff, 0xff}
		if _, _, err := DecodeVector(p, nil, nil); !errors.Is(err, ErrMalformed) {
			t.Fatalf("codec %#x: want ErrMalformed, got %v", codec, err)
		}
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	in := NewConn(pipeConn{r: bytes.NewReader([]byte("this is not a frame")), w: io.Discard})
	if _, err := in.ReadFrame(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestReadFrameRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	out := NewConn(pipeConn{r: bytes.NewReader(nil), w: &buf})
	if err := out.WriteFrame(MsgProbeOK, func(b []byte) ([]byte, error) {
		return AppendProbeOK(b, ProbeOK{NumSamples: 9})
	}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		in := NewConn(pipeConn{r: bytes.NewReader(whole[:cut]), w: io.Discard})
		_, err := in.ReadFrame()
		if err == nil {
			t.Fatalf("cut at %d: truncated frame decoded", cut)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: want ErrTruncated, got %v", cut, err)
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	hdr := []byte{magic0, magic1, Version, byte(MsgProbe), 0xff, 0xff, 0xff, 0xff}
	in := NewConn(pipeConn{r: bytes.NewReader(hdr), w: io.Discard})
	if _, err := in.ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	in := NewConn(pipeConn{r: bytes.NewReader(nil), w: io.Discard})
	if _, err := in.ReadFrame(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	out := NewConn(pipeConn{r: bytes.NewReader(nil), w: &buf})
	e := ErrorMsg{Code: ErrCodeVersion, PeerVersion: Version, Text: "speak v1"}
	if err := out.WriteFrame(MsgError, func(b []byte) ([]byte, error) {
		return AppendError(b, e)
	}); err != nil {
		t.Fatal(err)
	}
	in := NewConn(pipeConn{r: bytes.NewReader(buf.Bytes()), w: io.Discard})
	fr, err := in.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseError(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("got %+v want %+v", got, e)
	}
}

func TestConnSteadyStateAllocFree(t *testing.T) {
	const dim = 2048
	v := randomVec(dim, 8)
	ref := randomVec(dim, 9)
	var buf bytes.Buffer
	out := NewConn(pipeConn{r: bytes.NewReader(nil), w: &buf})
	recon := make([]float64, dim)
	dst := make([]float64, dim)
	encode := func() {
		buf.Reset()
		if err := out.WriteFrame(MsgTrain, func(b []byte) ([]byte, error) {
			b = AppendTrain(b, Train{Epochs: 1, BatchSize: 1, UpdateCodec: VecQ8})
			return AppendVector(b, VecQ8, v, ref, recon)
		}); err != nil {
			t.Fatal(err)
		}
	}
	encode() // warm the write buffer
	allocs := testing.AllocsPerRun(50, encode)
	if allocs > 0 {
		t.Fatalf("steady-state encode allocates: %v allocs/op", allocs)
	}
	// Steady-state decode into retained scratch (the bytes.Reader is
	// reused so only the codec path is measured).
	raw := append([]byte(nil), buf.Bytes()...)
	rd := bytes.NewReader(raw)
	in := NewConn(pipeConn{r: rd, w: io.Discard})
	decode := func() {
		rd.Reset(raw)
		in.br.Reset(rd)
		fr, err := in.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		_, rest, err := ParseTrain(fr.Payload)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		if out, _, err = DecodeVector(rest, dst, ref); err != nil {
			t.Fatal(err)
		}
		dst = out
	}
	decode() // warm the payload buffer
	allocs = testing.AllocsPerRun(50, decode)
	if allocs > 0 {
		t.Fatalf("steady-state decode allocates: %v allocs/op", allocs)
	}
}
