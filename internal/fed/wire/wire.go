// Package wire implements the federation's binary wire protocol: length-
// prefixed little-endian frames with bulk-copied float payloads, replacing
// the reflection-driven gob streams of earlier revisions. One frame is
//
//	magic   [2]byte  'E','V'
//	version uint8    protocol revision (Version)
//	type    uint8    message kind (MsgType)
//	length  uint32   payload bytes, little-endian
//	payload [length]byte
//
// The 8-byte header layout is frozen across protocol revisions so any peer
// can always read far enough to discover a version mismatch and answer
// with a typed MsgError frame instead of hanging — that reply is the
// version negotiation performed during the Hello handshake. A peer whose
// first bytes fail the magic check (for example a legacy gob speaker) is
// rejected with ErrBadMagic before any payload is read.
//
// Vector payloads are self-describing (a leading VecCodec byte), so a
// response may be more compressed than the request asked for; see codec.go
// for the float64/float32/int8-delta encodings.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	magic0 = 'E'
	magic1 = 'V'

	// Version is the protocol revision this build speaks. Frames carrying
	// any other version are answered with an ErrCodeVersion MsgError.
	Version = 1

	// HeaderBytes is the fixed frame-header size.
	HeaderBytes = 8

	// MaxFrameBytes bounds a single frame's payload; a header claiming
	// more is rejected before any payload allocation. The paper-scale
	// model (~12k parameters, ~96 KiB raw) sits four orders of magnitude
	// below it.
	MaxFrameBytes = 1 << 28
)

// MsgType identifies a frame's message kind.
type MsgType uint8

// Message kinds. Requests flow coordinator → station, the *OK responses
// and MsgError flow back.
const (
	MsgHello   MsgType = 1 // identity/compatibility handshake request (empty payload)
	MsgHelloOK MsgType = 2
	MsgProbe   MsgType = 3 // sample-count query (empty payload)
	MsgProbeOK MsgType = 4
	MsgTrain   MsgType = 5
	MsgTrainOK MsgType = 6
	MsgError   MsgType = 7
)

// Scoring-service kinds (see serve.go). MsgScore flows producer →
// scoring service, MsgReload flows the federated coordinator's post-round
// broadcast → scoring service; the *OK responses flow back.
const (
	MsgScore    MsgType = 8  // one station's batch of observations
	MsgScoreOK  MsgType = 9  // per-observation verdicts
	MsgReload   MsgType = 10 // hot model reload: threshold + weight vector
	MsgReloadOK MsgType = 11
)

// Canary rollout kinds (see serve.go). MsgCanaryPush stages a candidate
// model generation for shadow scoring instead of swapping it live (the
// coordinator's -serve-canary post-round push); MsgCanaryStatus queries
// the rollout state machine; MsgCanaryCtl carries operator overrides
// (force-promote / force-rollback). The *OK responses flow back.
const (
	MsgCanaryPush     MsgType = 12 // stage candidate: threshold + weight vector
	MsgCanaryPushOK   MsgType = 13 // staging generation
	MsgCanaryStatus   MsgType = 14 // rollout status query (empty payload)
	MsgCanaryStatusOK MsgType = 15
	MsgCanaryCtl      MsgType = 16 // operator override: op + reason
	MsgCanaryCtlOK    MsgType = 17
)

// Hierarchical-federation kinds. MsgTrainPartial is an aggregation node's
// answer to MsgTrain: instead of one station's update it carries the
// node's partial aggregate over its own downstream round (see
// AppendTrainPartial for the layout). Requests still use MsgTrain — the
// parent does not need to know in advance whether a peer is a station or
// an edge.
const (
	MsgTrainPartial MsgType = 18
)

// Peer roles carried in HelloOK, so a parent discovers at handshake time
// whether a peer answers MsgTrain with MsgTrainOK (a leaf station) or
// MsgTrainPartial (an aggregation node fronting its own subtree).
const (
	RoleStation   uint8 = 0
	RoleAggregate uint8 = 1
)

// Typed protocol errors.
var (
	// ErrBadMagic marks a stream that is not this binary protocol at all
	// (e.g. a legacy gob peer).
	ErrBadMagic = errors.New("wire: not an evfed binary protocol stream")
	// ErrVersion marks a protocol-revision mismatch between peers.
	ErrVersion = errors.New("wire: protocol version mismatch")
	// ErrFrameTooLarge marks a frame header claiming more than MaxFrameBytes.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrTruncated marks a frame cut off mid-payload.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrMalformed marks a payload that does not parse as its message kind.
	ErrMalformed = errors.New("wire: malformed payload")
	// ErrNoRef marks a delta-coded vector without its reference vector.
	ErrNoRef = errors.New("wire: delta-coded vector without reference")
)

// ErrCode classifies a MsgError frame.
type ErrCode uint8

// MsgError codes.
const (
	// ErrCodeApp carries an application error reported by the station
	// (local training failure, dimension mismatch, ...).
	ErrCodeApp ErrCode = 1
	// ErrCodeVersion reports a protocol-revision mismatch; PeerVersion
	// carries the responder's revision.
	ErrCodeVersion ErrCode = 2
	// ErrCodeBadRequest reports an unparseable or unexpected request.
	ErrCodeBadRequest ErrCode = 3
	// ErrCodeNoDeltaRef reports a delta-coded broadcast on a connection
	// that holds no reference vector (coordinator/station state skew; the
	// cure is a fresh connection, which resets both ends to full frames).
	ErrCodeNoDeltaRef ErrCode = 4
)

// Frame is one decoded frame. Payload aliases the connection's reusable
// read buffer and is only valid until the next ReadFrame call.
type Frame struct {
	Version uint8
	Type    MsgType
	Payload []byte
}

// Conn frames messages over a byte stream. It owns reusable read/write
// buffers, so steady-state frame exchange performs no per-call allocation
// beyond what the caller's payload builders append. A Conn must not be
// used concurrently.
type Conn struct {
	br      *bufio.Reader
	w       io.Writer
	hdr     [HeaderBytes]byte // reused header scratch (a stack buffer would escape through io.ReadFull)
	out     []byte
	payload []byte
}

// NewConn wraps rw (typically a net.Conn) for frame exchange.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{br: bufio.NewReaderSize(rw, 32<<10), w: rw}
}

// ReadFrame reads one frame. io.EOF is returned untouched on a clean
// close before any header byte; all other failures are typed. The frame's
// payload buffer is reused by the next ReadFrame.
func (c *Conn) ReadFrame() (Frame, error) {
	hdr := c.hdr[:]
	if _, err := io.ReadFull(c.br, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, fmt.Errorf("%w: partial header", ErrTruncated)
		}
		return Frame{}, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return Frame{}, ErrBadMagic
	}
	size := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if size > MaxFrameBytes {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	// The payload is read in bounded chunks so a lying length field makes
	// the read fail after the bytes actually sent, instead of forcing one
	// attacker-sized upfront allocation.
	c.payload = c.payload[:0]
	for remaining := size; remaining > 0; {
		chunk := remaining
		if chunk > 64<<10 {
			chunk = 64 << 10
		}
		start := len(c.payload)
		if cap(c.payload) < start+chunk {
			c.payload = append(c.payload, make([]byte, chunk)...)
		} else {
			c.payload = c.payload[:start+chunk]
		}
		if _, err := io.ReadFull(c.br, c.payload[start:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Frame{}, fmt.Errorf("%w: got %d of %d payload bytes",
					ErrTruncated, start, size)
			}
			return Frame{}, err
		}
		remaining -= chunk
	}
	return Frame{Version: hdr[2], Type: MsgType(hdr[3]), Payload: c.payload}, nil
}

// WriteFrame assembles header plus the payload produced by build (which
// appends to the passed buffer) and writes the frame in a single Write
// call. build may be nil for empty-payload messages.
func (c *Conn) WriteFrame(t MsgType, build func(b []byte) ([]byte, error)) error {
	b := append(c.out[:0], magic0, magic1, Version, byte(t), 0, 0, 0, 0)
	if build != nil {
		var err error
		if b, err = build(b); err != nil {
			return err
		}
	}
	c.out = b
	n := len(b) - HeaderBytes
	if n > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	binary.LittleEndian.PutUint32(b[4:8], uint32(n))
	_, err := c.w.Write(b)
	return err
}

// ---- message payloads ----

// HelloOK is the peer's answer to the identity handshake.
type HelloOK struct {
	StationID  string
	ModelDim   int
	NumSamples int
	// Role distinguishes leaf stations (RoleStation) from aggregation
	// nodes (RoleAggregate). The byte is a trailing addition to the v1
	// payload: v1 peers that omit it parse as RoleStation, so flat
	// deployments interoperate unchanged.
	Role uint8
}

// ProbeOK answers a sample-count probe.
type ProbeOK struct {
	NumSamples int
}

// Train carries one local-training call's hyperparameters; the broadcast
// weight vector follows the fixed fields (see AppendVector).
type Train struct {
	Round        int
	Epochs       int
	BatchSize    int
	Workers      int
	LearningRate float64
	ProximalMu   float64
	PrivacyClip  float64
	PrivacyNoise float64
	// UpdateCodec is the uplink compression the coordinator asks the
	// station to apply to its update (the station may answer with a more
	// compressed codec; vector payloads are self-describing).
	UpdateCodec VecCodec
	// PartialKind tells aggregation nodes which partial form the root's
	// aggregation rule folds (see the fed package's PartialKind). Leaf
	// stations ignore it.
	PartialKind uint8
}

// TrainOK carries the station's update metadata; the encoded update
// vector follows the fixed fields.
type TrainOK struct {
	StationID    string
	NumSamples   int
	TrainSeconds float64
	FinalLoss    float64
}

// ErrorMsg is a typed failure report.
type ErrorMsg struct {
	Code ErrCode
	// PeerVersion is the responder's protocol revision (version
	// negotiation: meaningful for ErrCodeVersion).
	PeerVersion uint8
	Text        string
}

const maxStringLen = 1<<16 - 1

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > maxStringLen {
		return nil, fmt.Errorf("%w: string of %d bytes", ErrMalformed, len(s))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}

func parseString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("%w: short string header", ErrMalformed)
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return "", nil, fmt.Errorf("%w: string wants %d bytes, payload has %d", ErrMalformed, n, len(p))
	}
	return string(p[:n]), p[n:], nil
}

func parseU32(p []byte) (int, []byte, error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("%w: short uint32", ErrMalformed)
	}
	return int(binary.LittleEndian.Uint32(p)), p[4:], nil
}

func parseF64(p []byte) (float64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("%w: short float64", ErrMalformed)
	}
	return f64FromBits(binary.LittleEndian.Uint64(p)), p[8:], nil
}

// AppendHelloOK encodes h onto b.
func AppendHelloOK(b []byte, h HelloOK) ([]byte, error) {
	b, err := appendString(b, h.StationID)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(h.ModelDim))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.NumSamples))
	return append(b, h.Role), nil
}

// ParseHelloOK decodes a MsgHelloOK payload.
func ParseHelloOK(p []byte) (HelloOK, error) {
	var h HelloOK
	var err error
	if h.StationID, p, err = parseString(p); err != nil {
		return h, err
	}
	if h.ModelDim, p, err = parseU32(p); err != nil {
		return h, err
	}
	if h.NumSamples, p, err = parseU32(p); err != nil {
		return h, err
	}
	// Trailing role byte: absent from pre-hierarchy payloads, which makes
	// those peers leaf stations.
	if len(p) > 0 {
		h.Role = p[0]
	}
	return h, nil
}

// AppendProbeOK encodes pr onto b.
func AppendProbeOK(b []byte, pr ProbeOK) ([]byte, error) {
	return binary.LittleEndian.AppendUint32(b, uint32(pr.NumSamples)), nil
}

// ParseProbeOK decodes a MsgProbeOK payload.
func ParseProbeOK(p []byte) (ProbeOK, error) {
	n, _, err := parseU32(p)
	return ProbeOK{NumSamples: n}, err
}

// AppendTrain encodes t's fixed fields onto b; the caller appends the
// broadcast vector with AppendVector immediately after.
func AppendTrain(b []byte, t Train) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Round))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Epochs))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.BatchSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Workers))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(t.LearningRate))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(t.ProximalMu))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(t.PrivacyClip))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(t.PrivacyNoise))
	return append(b, byte(t.UpdateCodec), t.PartialKind)
}

// ParseTrain decodes a MsgTrain payload, returning the fixed fields and
// the remaining bytes (the encoded broadcast vector).
func ParseTrain(p []byte) (Train, []byte, error) {
	var t Train
	var err error
	if t.Round, p, err = parseU32(p); err != nil {
		return t, nil, err
	}
	if t.Epochs, p, err = parseU32(p); err != nil {
		return t, nil, err
	}
	if t.BatchSize, p, err = parseU32(p); err != nil {
		return t, nil, err
	}
	if t.Workers, p, err = parseU32(p); err != nil {
		return t, nil, err
	}
	if t.LearningRate, p, err = parseF64(p); err != nil {
		return t, nil, err
	}
	if t.ProximalMu, p, err = parseF64(p); err != nil {
		return t, nil, err
	}
	if t.PrivacyClip, p, err = parseF64(p); err != nil {
		return t, nil, err
	}
	if t.PrivacyNoise, p, err = parseF64(p); err != nil {
		return t, nil, err
	}
	if len(p) < 2 {
		return t, nil, fmt.Errorf("%w: missing update codec / partial kind", ErrMalformed)
	}
	t.UpdateCodec = VecCodec(p[0])
	if t.UpdateCodec > VecQ8 {
		return t, nil, fmt.Errorf("%w: unknown update codec %d", ErrMalformed, t.UpdateCodec)
	}
	t.PartialKind = p[1]
	if t.PartialKind > partialKindMax {
		return t, nil, fmt.Errorf("%w: unknown partial kind %d", ErrMalformed, t.PartialKind)
	}
	return t, p[2:], nil
}

// trainMetaBytes is the fixed-field size of a Train payload.
const trainMetaBytes = 4*4 + 4*8 + 2

// AppendTrainOK encodes t's fixed fields onto b; the caller appends the
// update vector with AppendVector immediately after.
func AppendTrainOK(b []byte, t TrainOK) ([]byte, error) {
	b, err := appendString(b, t.StationID)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(t.NumSamples))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(t.TrainSeconds))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(t.FinalLoss))
	return b, nil
}

// ParseTrainOK decodes a MsgTrainOK payload, returning the fixed fields
// and the remaining bytes (the encoded update vector).
func ParseTrainOK(p []byte) (TrainOK, []byte, error) {
	var t TrainOK
	var err error
	if t.StationID, p, err = parseString(p); err != nil {
		return t, nil, err
	}
	if t.NumSamples, p, err = parseU32(p); err != nil {
		return t, nil, err
	}
	if t.TrainSeconds, p, err = parseF64(p); err != nil {
		return t, nil, err
	}
	if t.FinalLoss, p, err = parseF64(p); err != nil {
		return t, nil, err
	}
	return t, p, nil
}

// AppendError encodes e onto b.
func AppendError(b []byte, e ErrorMsg) ([]byte, error) {
	b = append(b, byte(e.Code), e.PeerVersion)
	return appendString(b, e.Text)
}

// ParseError decodes a MsgError payload.
func ParseError(p []byte) (ErrorMsg, error) {
	if len(p) < 2 {
		return ErrorMsg{}, fmt.Errorf("%w: short error frame", ErrMalformed)
	}
	e := ErrorMsg{Code: ErrCode(p[0]), PeerVersion: p[1]}
	var err error
	e.Text, _, err = parseString(p[2:])
	return e, err
}

// ---- exact frame-size accounting ----
//
// The encodings are fixed-width, so wire cost is computable without
// encoding; the sizes below include the frame header and are verified
// against real encodes in tests. The coordinator uses them to report
// bytes-per-round for in-process federations under the same codec policy
// a TCP deployment would pay.

// HelloBytes is the size of a Hello request frame.
func HelloBytes() int { return HeaderBytes }

// HelloOKBytes is the size of a HelloOK frame for a station-ID length.
func HelloOKBytes(idLen int) int { return HeaderBytes + 2 + idLen + 8 + 1 }

// ProbeBytes is the size of a Probe request frame.
func ProbeBytes() int { return HeaderBytes }

// ProbeOKBytes is the size of a ProbeOK frame.
func ProbeOKBytes() int { return HeaderBytes + 4 }

// TrainBytes is the size of a Train frame whose n-dim broadcast vector is
// encoded with codec.
func TrainBytes(codec VecCodec, n int) int {
	return HeaderBytes + trainMetaBytes + VectorBytes(codec, n)
}

// TrainOKBytes is the size of a TrainOK frame whose n-dim update vector
// is encoded with codec, for a station-ID length.
func TrainOKBytes(codec VecCodec, n, idLen int) int {
	return HeaderBytes + 2 + idLen + 4 + 16 + VectorBytes(codec, n)
}
