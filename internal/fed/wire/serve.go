package wire

import (
	"encoding/binary"
	"fmt"
)

// Scoring-service payloads. A MsgScore frame carries one station's batch
// of consecutive observations; the service answers with one MsgScoreOK
// frame carrying a verdict per observation, in submission order. A
// MsgReload frame carries a detection threshold plus a weight vector
// (encoded with AppendVector; delta codecs are rejected — reload frames
// are connectionless pushes with no reference state) and is answered by
// MsgReloadOK carrying the model epoch now serving. All encodings are
// fixed-width, so frame sizes are exactly computable (ScoreBytes &c.).

// Verdict flag bits (ScoreVerdict.Flags).
const (
	// VerdictReady is set once the station's look-back window is full;
	// warm-up verdicts carry a zero score and are never flagged.
	VerdictReady = 1 << 0
	// VerdictFlagged is set when the score exceeded the serving threshold.
	VerdictFlagged = 1 << 1
	// VerdictCanary is set when the verdict was served live by the canary
	// candidate generation (the station is in the rollout cohort).
	VerdictCanary = 1 << 2
)

// ScoreVerdict is one observation's verdict on the wire.
type ScoreVerdict struct {
	// Index is the observation's 0-based position in the station's stream.
	Index uint64
	// Flags holds the Verdict* bits.
	Flags uint8
	// Epoch is the model epoch that scored the observation.
	Epoch uint32
	// Score is the anomaly score (squared last-point reconstruction error).
	Score float64
	// Mitigated is the value the service suggests forwarding downstream:
	// the raw observation, or its reconstruction when flagged and
	// mitigation is enabled.
	Mitigated float64
}

// scoreVerdictBytes is the fixed wire size of one encoded ScoreVerdict.
const scoreVerdictBytes = 8 + 1 + 4 + 8 + 8

// AppendScore encodes a station ID and its observation batch onto b.
func AppendScore(b []byte, station string, values []float64) ([]byte, error) {
	b, err := appendString(b, station)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(values)))
	return appendF64s(b, values), nil
}

// ParseScore decodes a MsgScore payload, appending the observations onto
// dst[:0] (pass nil to allocate).
func ParseScore(p []byte, dst []float64) (station string, values []float64, err error) {
	if station, p, err = parseString(p); err != nil {
		return "", nil, err
	}
	n, p, err := parseU32(p)
	if err != nil {
		return "", nil, err
	}
	if len(p) != 8*n {
		return "", nil, fmt.Errorf("%w: %d observation bytes for count %d", ErrMalformed, len(p), n)
	}
	dst = dst[:0]
	if cap(dst) < n {
		dst = make([]float64, 0, n)
	}
	dst = dst[:n]
	decodeF64s(dst, p)
	return station, dst, nil
}

// AppendScoreOK encodes the verdict batch onto b.
func AppendScoreOK(b []byte, verdicts []ScoreVerdict) ([]byte, error) {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(verdicts)))
	for _, v := range verdicts {
		b = binary.LittleEndian.AppendUint64(b, v.Index)
		b = append(b, v.Flags)
		b = binary.LittleEndian.AppendUint32(b, v.Epoch)
		b = binary.LittleEndian.AppendUint64(b, f64Bits(v.Score))
		b = binary.LittleEndian.AppendUint64(b, f64Bits(v.Mitigated))
	}
	return b, nil
}

// ParseScoreOK decodes a MsgScoreOK payload, appending onto dst[:0]
// (pass nil to allocate).
func ParseScoreOK(p []byte, dst []ScoreVerdict) ([]ScoreVerdict, error) {
	n, p, err := parseU32(p)
	if err != nil {
		return nil, err
	}
	if len(p) != n*scoreVerdictBytes {
		return nil, fmt.Errorf("%w: %d verdict bytes for count %d", ErrMalformed, len(p), n)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		q := p[i*scoreVerdictBytes:]
		dst = append(dst, ScoreVerdict{
			Index:     binary.LittleEndian.Uint64(q),
			Flags:     q[8],
			Epoch:     binary.LittleEndian.Uint32(q[9:]),
			Score:     f64FromBits(binary.LittleEndian.Uint64(q[13:])),
			Mitigated: f64FromBits(binary.LittleEndian.Uint64(q[21:])),
		})
	}
	return dst, nil
}

// AppendReload encodes the reload header onto b; the caller appends the
// weight vector with AppendVector (VecF64 or VecF32 — reload pushes carry
// no delta reference) immediately after. A threshold ≤ 0 means "keep the
// service's current threshold".
func AppendReload(b []byte, threshold float64) []byte {
	return binary.LittleEndian.AppendUint64(b, f64Bits(threshold))
}

// ParseReload decodes a MsgReload payload, returning the threshold and
// the remaining bytes (the encoded weight vector).
func ParseReload(p []byte) (threshold float64, rest []byte, err error) {
	if threshold, p, err = parseF64(p); err != nil {
		return 0, nil, err
	}
	return threshold, p, nil
}

// AppendReloadOK encodes the now-serving model epoch onto b.
func AppendReloadOK(b []byte, epoch int) ([]byte, error) {
	return binary.LittleEndian.AppendUint32(b, uint32(epoch)), nil
}

// ParseReloadOK decodes a MsgReloadOK payload.
func ParseReloadOK(p []byte) (epoch int, err error) {
	epoch, _, err = parseU32(p)
	return epoch, err
}

// ScoreBytes is the size of a MsgScore frame carrying n observations for
// a station-ID length.
func ScoreBytes(idLen, n int) int { return HeaderBytes + 2 + idLen + 4 + 8*n }

// ScoreOKBytes is the size of a MsgScoreOK frame carrying n verdicts.
func ScoreOKBytes(n int) int { return HeaderBytes + 4 + n*scoreVerdictBytes }

// ReloadBytes is the size of a MsgReload frame whose n-dim weight vector
// is encoded with codec.
func ReloadBytes(codec VecCodec, n int) int {
	return HeaderBytes + 8 + VectorBytes(codec, n)
}

// ReloadOKBytes is the size of a MsgReloadOK frame.
func ReloadOKBytes() int { return HeaderBytes + 4 }
