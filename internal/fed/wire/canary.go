package wire

import (
	"encoding/binary"
	"fmt"
)

// Canary-rollout payloads. A MsgCanaryPush frame stages a candidate
// model generation on the scoring service — identical layout to
// MsgReload (threshold + AppendVector-encoded weights; delta codecs are
// rejected, canary pushes are connectionless) — and is answered by
// MsgCanaryPushOK carrying the staging generation. MsgCanaryStatus
// (empty payload) is answered by MsgCanaryStatusOK, a fixed-width
// snapshot of the rollout state machine plus the last outcome's reason
// string. MsgCanaryCtl carries an operator override and is answered by
// MsgCanaryCtlOK with the serving epoch after the override.

// CanaryOp selects a MsgCanaryCtl override.
type CanaryOp uint8

// Operator overrides.
const (
	// CanaryPromote immediately promotes the staged candidate to the
	// serving model, skipping the remaining divergence budget.
	CanaryPromote CanaryOp = 1
	// CanaryRollback immediately discards the staged candidate,
	// quarantining it with the carried reason.
	CanaryRollback CanaryOp = 2
)

// Canary rollout phases on the wire (CanaryStatus.Phase).
const (
	CanaryPhaseNone   uint8 = 0 // no candidate staged
	CanaryPhaseShadow uint8 = 1
	CanaryPhaseCanary uint8 = 2
)

// Last-outcome codes on the wire (CanaryStatus.LastOutcome).
const (
	CanaryOutcomeNone       uint8 = 0
	CanaryOutcomePromoted   uint8 = 1
	CanaryOutcomeRolledBack uint8 = 2
)

// CanaryStatus is the rollout state machine snapshot on the wire.
type CanaryStatus struct {
	// Phase is the CanaryPhase* code of the in-flight candidate.
	Phase uint8
	// Gen is the staging generation of the in-flight candidate (the
	// latest staged generation when none is in flight).
	Gen uint64
	// ServingEpoch is the incumbent model epoch.
	ServingEpoch uint32
	// Samples counts divergence observations for the current candidate.
	Samples uint64
	// Promotions and Rollbacks count state-machine outcomes since boot.
	Promotions uint64
	Rollbacks  uint64
	// CohortBasisPoints is the canary cohort size in basis points
	// (stations per 10,000 served by the candidate during canary).
	CohortBasisPoints uint16
	// FlipRate, AnomalyDelta, MeanShift and QuantileShift are the
	// windowed divergence metrics (see serve.DivergenceStats).
	FlipRate      float64
	AnomalyDelta  float64
	MeanShift     float64
	QuantileShift float64
	// LastOutcome is the CanaryOutcome* code of the most recently
	// resolved candidate; LastReason carries its human-readable cause.
	LastOutcome uint8
	LastReason  string
}

// canaryStatusFixedBytes is the fixed-width prefix of a CanaryStatus
// payload (everything but the reason string).
const canaryStatusFixedBytes = 1 + 8 + 4 + 8 + 8 + 8 + 2 + 4*8 + 1

// AppendCanaryPush encodes the staging header onto b; the caller appends
// the weight vector with AppendVector (VecF64 or VecF32) immediately
// after. A threshold ≤ 0 means "inherit the serving threshold".
func AppendCanaryPush(b []byte, threshold float64) []byte {
	return AppendReload(b, threshold)
}

// ParseCanaryPush decodes a MsgCanaryPush payload, returning the
// threshold and the remaining bytes (the encoded weight vector).
func ParseCanaryPush(p []byte) (threshold float64, rest []byte, err error) {
	return ParseReload(p)
}

// AppendCanaryPushOK encodes the staging generation onto b.
func AppendCanaryPushOK(b []byte, gen uint64) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(b, gen), nil
}

// ParseCanaryPushOK decodes a MsgCanaryPushOK payload.
func ParseCanaryPushOK(p []byte) (gen uint64, err error) {
	if len(p) < 8 {
		return 0, fmt.Errorf("%w: short generation", ErrMalformed)
	}
	return binary.LittleEndian.Uint64(p), nil
}

// AppendCanaryStatusOK encodes st onto b.
func AppendCanaryStatusOK(b []byte, st CanaryStatus) ([]byte, error) {
	b = append(b, st.Phase)
	b = binary.LittleEndian.AppendUint64(b, st.Gen)
	b = binary.LittleEndian.AppendUint32(b, st.ServingEpoch)
	b = binary.LittleEndian.AppendUint64(b, st.Samples)
	b = binary.LittleEndian.AppendUint64(b, st.Promotions)
	b = binary.LittleEndian.AppendUint64(b, st.Rollbacks)
	b = binary.LittleEndian.AppendUint16(b, st.CohortBasisPoints)
	b = binary.LittleEndian.AppendUint64(b, f64Bits(st.FlipRate))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(st.AnomalyDelta))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(st.MeanShift))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(st.QuantileShift))
	b = append(b, st.LastOutcome)
	return appendString(b, st.LastReason)
}

// ParseCanaryStatusOK decodes a MsgCanaryStatusOK payload.
func ParseCanaryStatusOK(p []byte) (CanaryStatus, error) {
	var st CanaryStatus
	if len(p) < canaryStatusFixedBytes {
		return st, fmt.Errorf("%w: %d canary status bytes", ErrMalformed, len(p))
	}
	st.Phase = p[0]
	st.Gen = binary.LittleEndian.Uint64(p[1:])
	st.ServingEpoch = binary.LittleEndian.Uint32(p[9:])
	st.Samples = binary.LittleEndian.Uint64(p[13:])
	st.Promotions = binary.LittleEndian.Uint64(p[21:])
	st.Rollbacks = binary.LittleEndian.Uint64(p[29:])
	st.CohortBasisPoints = binary.LittleEndian.Uint16(p[37:])
	st.FlipRate = f64FromBits(binary.LittleEndian.Uint64(p[39:]))
	st.AnomalyDelta = f64FromBits(binary.LittleEndian.Uint64(p[47:]))
	st.MeanShift = f64FromBits(binary.LittleEndian.Uint64(p[55:]))
	st.QuantileShift = f64FromBits(binary.LittleEndian.Uint64(p[63:]))
	st.LastOutcome = p[71]
	var err error
	st.LastReason, _, err = parseString(p[canaryStatusFixedBytes:])
	return st, err
}

// AppendCanaryCtl encodes an operator override onto b. reason is carried
// verbatim into the quarantine record on rollback (ignored on promote).
func AppendCanaryCtl(b []byte, op CanaryOp, reason string) ([]byte, error) {
	return appendString(append(b, byte(op)), reason)
}

// ParseCanaryCtl decodes a MsgCanaryCtl payload.
func ParseCanaryCtl(p []byte) (op CanaryOp, reason string, err error) {
	if len(p) < 1 {
		return 0, "", fmt.Errorf("%w: empty canary ctl", ErrMalformed)
	}
	op = CanaryOp(p[0])
	if op != CanaryPromote && op != CanaryRollback {
		return 0, "", fmt.Errorf("%w: unknown canary op %d", ErrMalformed, op)
	}
	reason, _, err = parseString(p[1:])
	return op, reason, err
}

// AppendCanaryCtlOK encodes the serving epoch after the override onto b
// (the promoted candidate's epoch, or the unchanged incumbent epoch on
// rollback).
func AppendCanaryCtlOK(b []byte, epoch int) ([]byte, error) {
	return binary.LittleEndian.AppendUint32(b, uint32(epoch)), nil
}

// ParseCanaryCtlOK decodes a MsgCanaryCtlOK payload.
func ParseCanaryCtlOK(p []byte) (epoch int, err error) {
	epoch, _, err = parseU32(p)
	return epoch, err
}

// CanaryPushBytes is the size of a MsgCanaryPush frame whose n-dim
// weight vector is encoded with codec.
func CanaryPushBytes(codec VecCodec, n int) int { return ReloadBytes(codec, n) }

// CanaryPushOKBytes is the size of a MsgCanaryPushOK frame.
func CanaryPushOKBytes() int { return HeaderBytes + 8 }

// CanaryStatusBytes is the size of a MsgCanaryStatus request frame.
func CanaryStatusBytes() int { return HeaderBytes }

// CanaryStatusOKBytes is the size of a MsgCanaryStatusOK frame for a
// reason-string length.
func CanaryStatusOKBytes(reasonLen int) int {
	return HeaderBytes + canaryStatusFixedBytes + 2 + reasonLen
}

// CanaryCtlBytes is the size of a MsgCanaryCtl frame for a reason-string
// length.
func CanaryCtlBytes(reasonLen int) int { return HeaderBytes + 1 + 2 + reasonLen }

// CanaryCtlOKBytes is the size of a MsgCanaryCtlOK frame.
func CanaryCtlOKBytes() int { return HeaderBytes + 4 }
