package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

// FuzzWireRoundTrip drives both halves of the codec with fuzzer-chosen
// bytes: (a) the inbound path must survive arbitrary streams — truncated,
// oversized, garbage, or valid frames — without panicking or allocating
// attacker-sized buffers, and (b) vectors derived from the input must
// survive encode→decode under every codec with the decoder landing
// exactly on the encoder-side reconstruction.
func FuzzWireRoundTrip(f *testing.F) {
	// Seed corpus: one valid frame of each kind, plus classic breakages.
	mk := func(t MsgType, build func(b []byte) ([]byte, error)) []byte {
		var buf bytes.Buffer
		c := NewConn(pipeConn{r: bytes.NewReader(nil), w: &buf})
		if err := c.WriteFrame(t, build); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(mk(MsgHello, nil))
	f.Add(mk(MsgHelloOK, func(b []byte) ([]byte, error) {
		return AppendHelloOK(b, HelloOK{StationID: "s", ModelDim: 3, NumSamples: 4})
	}))
	f.Add(mk(MsgProbeOK, func(b []byte) ([]byte, error) {
		return AppendProbeOK(b, ProbeOK{NumSamples: 7})
	}))
	vec := []float64{0.25, -1.5, 3.75, 0}
	f.Add(mk(MsgTrain, func(b []byte) ([]byte, error) {
		b = AppendTrain(b, Train{Round: 1, Epochs: 2, BatchSize: 3, LearningRate: 1e-3, UpdateCodec: VecQ8})
		return AppendVector(b, VecQ8, vec, []float64{0, 0, 0, 0}, nil)
	}))
	f.Add(mk(MsgTrainOK, func(b []byte) ([]byte, error) {
		b, err := AppendTrainOK(b, TrainOK{StationID: "s", NumSamples: 9, TrainSeconds: 0.5, FinalLoss: 0.01})
		if err != nil {
			return nil, err
		}
		return AppendVector(b, VecF32, vec, nil, nil)
	}))
	f.Add(mk(MsgTrainPartial, func(b []byte) ([]byte, error) {
		return AppendTrainPartial(b, TrainPartial{
			NodeID: "edge-1", Kind: partialWeighted, LeafParticipants: 2, SampleSum: 60,
			Count: 2, LossSum: 0.5, Dim: 4, WeightTotal: 60,
			Hi: vec, Lo: []float64{0, 0, 0, 0},
		})
	}))
	f.Add(mk(MsgTrainPartial, func(b []byte) ([]byte, error) {
		return AppendTrainPartial(b, TrainPartial{
			NodeID: "edge-2", Kind: partialHeld, LeafParticipants: 1, SampleSum: 9,
			Count: 1, Dim: 4, Held: [][]float64{vec},
		})
	}))
	f.Add(mk(MsgError, func(b []byte) ([]byte, error) {
		return AppendError(b, ErrorMsg{Code: ErrCodeVersion, PeerVersion: 2, Text: "v2"})
	}))
	f.Add(mk(MsgScore, func(b []byte) ([]byte, error) {
		return AppendScore(b, "zone-102", vec)
	}))
	f.Add(mk(MsgScoreOK, func(b []byte) ([]byte, error) {
		return AppendScoreOK(b, []ScoreVerdict{
			{Index: 41, Flags: VerdictReady | VerdictFlagged, Epoch: 2, Score: 0.5, Mitigated: 0.25},
		})
	}))
	f.Add(mk(MsgReload, func(b []byte) ([]byte, error) {
		return AppendVector(AppendReload(b, 0.03), VecF32, vec, nil, nil)
	}))
	f.Add(mk(MsgReloadOK, func(b []byte) ([]byte, error) {
		return AppendReloadOK(b, 3)
	}))
	f.Add(mk(MsgCanaryPush, func(b []byte) ([]byte, error) {
		return AppendVector(AppendCanaryPush(b, 0.04), VecF64, vec, nil, nil)
	}))
	f.Add(mk(MsgCanaryPushOK, func(b []byte) ([]byte, error) {
		return AppendCanaryPushOK(b, 7)
	}))
	f.Add(mk(MsgCanaryStatus, nil))
	f.Add(mk(MsgCanaryStatusOK, func(b []byte) ([]byte, error) {
		return AppendCanaryStatusOK(b, CanaryStatus{
			Phase: CanaryPhaseCanary, Gen: 5, ServingEpoch: 3, Samples: 640,
			Promotions: 2, Rollbacks: 1, CohortBasisPoints: 2500,
			FlipRate: 0.01, AnomalyDelta: 0.005, MeanShift: 0.2, QuantileShift: 1.1,
			LastOutcome: CanaryOutcomeRolledBack, LastReason: "flip rate 0.4 > 0.05",
		})
	}))
	f.Add(mk(MsgCanaryCtl, func(b []byte) ([]byte, error) {
		return AppendCanaryCtl(b, CanaryRollback, "operator override")
	}))
	f.Add(mk(MsgCanaryCtlOK, func(b []byte) ([]byte, error) {
		return AppendCanaryCtlOK(b, 4)
	}))
	// Malicious-update shapes from the Byzantine client wire path: a
	// sign-flipped update (large negative coordinates), a scaled-poison
	// update (extreme amplification, the saturating regime), and a held
	// partial relaying a poisoned station vector through an edge.
	poison := []float64{-2.5e3, 1e9, -1e9, math.MaxFloat64 / 4}
	f.Add(mk(MsgTrainOK, func(b []byte) ([]byte, error) {
		b, err := AppendTrainOK(b, TrainOK{StationID: "byz", NumSamples: 3, TrainSeconds: 0.1, FinalLoss: 0.1})
		if err != nil {
			return nil, err
		}
		return AppendVector(b, VecF64, poison, nil, nil)
	}))
	f.Add(mk(MsgTrainOK, func(b []byte) ([]byte, error) {
		b, err := AppendTrainOK(b, TrainOK{StationID: "byz-q8", NumSamples: 3, TrainSeconds: 0.1, FinalLoss: 0.1})
		if err != nil {
			return nil, err
		}
		// Quantized poison: the q8 delta codec must clamp, not wrap.
		return AppendVector(b, VecQ8, poison, []float64{0, 0, 0, 0}, nil)
	}))
	f.Add(mk(MsgTrainPartial, func(b []byte) ([]byte, error) {
		return AppendTrainPartial(b, TrainPartial{
			NodeID: "edge-byz", Kind: partialHeld, LeafParticipants: 3, SampleSum: 27,
			Count: 3, Dim: 4, Held: [][]float64{vec, poison, {0, 0, 0, 0}},
		})
	}))
	f.Add([]byte("this is not a frame at all"))
	f.Add([]byte{magic0, magic1, Version, byte(MsgTrain), 0xff, 0xff, 0xff, 0x7f}) // lying length
	f.Add(mk(MsgHello, nil)[:5])                                                   // truncated header

	f.Fuzz(func(t *testing.T, data []byte) {
		// (a) Arbitrary inbound stream: parse a bounded number of frames.
		c := NewConn(pipeConn{r: bytes.NewReader(data), w: io.Discard})
		ref := make([]float64, 0, 256)
		for range 8 {
			fr, err := c.ReadFrame()
			if err != nil {
				break
			}
			switch fr.Type {
			case MsgHelloOK:
				_, _ = ParseHelloOK(fr.Payload)
			case MsgProbeOK:
				_, _ = ParseProbeOK(fr.Payload)
			case MsgTrain:
				if _, rest, err := ParseTrain(fr.Payload); err == nil {
					// Decode with a matching all-zero reference so q8
					// payloads exercise the delta path too.
					if len(rest) >= 5 {
						n := int(binary.LittleEndian.Uint32(rest[1:5]))
						if n <= 1<<20 {
							ref = ref[:0]
							for range n {
								ref = append(ref, 0)
							}
							_, _, _ = DecodeVector(rest, nil, ref)
						}
					}
				}
			case MsgTrainOK:
				if _, rest, err := ParseTrainOK(fr.Payload); err == nil {
					_, _, _ = DecodeVector(rest, nil, nil)
				}
			case MsgTrainPartial:
				_, _ = ParseTrainPartial(fr.Payload)
			case MsgError:
				_, _ = ParseError(fr.Payload)
			case MsgScore:
				_, _, _ = ParseScore(fr.Payload, nil)
			case MsgScoreOK:
				_, _ = ParseScoreOK(fr.Payload, nil)
			case MsgReload:
				if _, rest, err := ParseReload(fr.Payload); err == nil {
					_, _, _ = DecodeVector(rest, nil, nil)
				}
			case MsgReloadOK:
				_, _ = ParseReloadOK(fr.Payload)
			case MsgCanaryPush:
				if _, rest, err := ParseCanaryPush(fr.Payload); err == nil {
					_, _, _ = DecodeVector(rest, nil, nil)
				}
			case MsgCanaryPushOK:
				_, _ = ParseCanaryPushOK(fr.Payload)
			case MsgCanaryStatusOK:
				_, _ = ParseCanaryStatusOK(fr.Payload)
			case MsgCanaryCtl:
				_, _, _ = ParseCanaryCtl(fr.Payload)
			case MsgCanaryCtlOK:
				_, _ = ParseCanaryCtlOK(fr.Payload)
			}
		}

		// (b) Structured round trip: derive a vector from the raw bytes.
		n := len(data) / 8
		if n == 0 {
			return
		}
		if n > 6000 {
			n = 6000
		}
		v := make([]float64, n)
		refs := make([]float64, n)
		for i := range v {
			x := math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = float64(i)
			}
			v[i] = x
			refs[i] = x * 0.75
		}
		for _, codec := range []VecCodec{VecF64, VecF32, VecQ8} {
			recon := make([]float64, n)
			enc, err := AppendVector(nil, codec, v, refs, recon)
			if err != nil {
				t.Fatalf("%v: encode: %v", codec, err)
			}
			if len(enc) != VectorBytes(codec, n) {
				t.Fatalf("%v: size %d, VectorBytes %d", codec, len(enc), VectorBytes(codec, n))
			}
			dec, rest, err := DecodeVector(enc, nil, refs)
			if err != nil {
				t.Fatalf("%v: decode: %v", codec, err)
			}
			if len(rest) != 0 {
				t.Fatalf("%v: %d trailing bytes", codec, len(rest))
			}
			for i := range dec {
				same := dec[i] == recon[i] ||
					(math.IsNaN(dec[i]) && math.IsNaN(recon[i]))
				if !same {
					t.Fatalf("%v: decode[%d]=%v, sender recon %v (v=%v ref=%v)",
						codec, i, dec[i], recon[i], v[i], refs[i])
				}
			}
		}
	})
}
