package wire

import (
	"errors"
	"math"
	"testing"
)

func TestTrainPartialRoundTripFolded(t *testing.T) {
	for _, kind := range []uint8{partialWeighted, partialUniform} {
		in := TrainPartial{
			NodeID:           "edge-west",
			Kind:             kind,
			LeafParticipants: 37,
			LeafDropped:      3,
			SampleSum:        123456789,
			Count:            40,
			LossSum:          12.75,
			ClientSeconds:    981.5,
			BytesDown:        1 << 33,
			BytesUp:          1 << 21,
			Dim:              5,
			WeightTotal:      4020,
			Hi:               []float64{1.5, -2.25, math.Pi, 0, 1e300},
			Lo:               []float64{1e-17, -3e-18, 0, 2e-20, -5e284},
		}
		enc, err := AppendTrainPartial(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		if want := TrainPartialBytes(kind, in.Dim, in.Count, len(in.NodeID)) - HeaderBytes; len(enc) != want {
			t.Fatalf("kind %d: encoded %d bytes, TrainPartialBytes says %d (payload)", kind, len(enc), want)
		}
		out, err := ParseTrainPartial(enc)
		if err != nil {
			t.Fatal(err)
		}
		if out.NodeID != in.NodeID || out.Kind != in.Kind ||
			out.LeafParticipants != in.LeafParticipants || out.LeafDropped != in.LeafDropped ||
			out.SampleSum != in.SampleSum || out.Count != in.Count ||
			out.LossSum != in.LossSum || out.ClientSeconds != in.ClientSeconds ||
			out.BytesDown != in.BytesDown || out.BytesUp != in.BytesUp ||
			out.Dim != in.Dim || out.WeightTotal != in.WeightTotal {
			t.Fatalf("kind %d: meta mismatch:\n in: %+v\nout: %+v", kind, in, out)
		}
		for i := range in.Hi {
			// Bit-exact transport is the whole point of the raw f64 layout:
			// the compensation terms are meaningless after any rounding.
			if math.Float64bits(out.Hi[i]) != math.Float64bits(in.Hi[i]) ||
				math.Float64bits(out.Lo[i]) != math.Float64bits(in.Lo[i]) {
				t.Fatalf("kind %d: vector slot %d not bit-exact", kind, i)
			}
		}
		if out.Held != nil {
			t.Fatalf("kind %d: folded partial decoded held vectors", kind)
		}
	}
}

func TestTrainPartialRoundTripHeld(t *testing.T) {
	in := TrainPartial{
		NodeID: "edge-held",
		Kind:   partialHeld,
		Count:  3,
		Dim:    4,
		Held: [][]float64{
			{1, 2, 3, 4},
			{-1, -2, -3, -4},
			{0.5, math.Inf(1), math.SmallestNonzeroFloat64, -0},
		},
		LeafParticipants: 3,
		SampleSum:        90,
	}
	enc, err := AppendTrainPartial(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if want := TrainPartialBytes(partialHeld, in.Dim, in.Count, len(in.NodeID)) - HeaderBytes; len(enc) != want {
		t.Fatalf("encoded %d bytes, TrainPartialBytes says %d (payload)", len(enc), want)
	}
	out, err := ParseTrainPartial(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Held) != in.Count {
		t.Fatalf("decoded %d held vectors, want %d", len(out.Held), in.Count)
	}
	for i := range in.Held {
		for j := range in.Held[i] {
			if math.Float64bits(out.Held[i][j]) != math.Float64bits(in.Held[i][j]) {
				t.Fatalf("held[%d][%d] not bit-exact: %v vs %v", i, j, out.Held[i][j], in.Held[i][j])
			}
		}
	}
	if out.Hi != nil || out.Lo != nil {
		t.Fatal("held partial decoded folded accumulators")
	}
}

func TestTrainPartialEncodeRejectsInconsistent(t *testing.T) {
	base := TrainPartial{NodeID: "e", Count: 2, Dim: 3,
		Hi: []float64{1, 2, 3}, Lo: []float64{0, 0, 0}}
	for name, mut := range map[string]func(*TrainPartial){
		"unknown kind":    func(p *TrainPartial) { p.Kind = partialKindMax + 1 },
		"short hi":        func(p *TrainPartial) { p.Hi = p.Hi[:2] },
		"short lo":        func(p *TrainPartial) { p.Lo = p.Lo[:1] },
		"held count lies": func(p *TrainPartial) { p.Kind = partialHeld; p.Held = [][]float64{{1, 2, 3}} },
		"held dim lies": func(p *TrainPartial) {
			p.Kind = partialHeld
			p.Held = [][]float64{{1, 2, 3}, {4, 5}}
		},
	} {
		p := base
		mut(&p)
		if _, err := AppendTrainPartial(nil, p); !errors.Is(err, ErrMalformed) {
			t.Fatalf("%s: want ErrMalformed, got %v", name, err)
		}
	}
}

func TestTrainPartialParseRejectsMalformed(t *testing.T) {
	valid := func(kind uint8) []byte {
		tp := TrainPartial{NodeID: "edge", Kind: kind, Count: 2, Dim: 3, WeightTotal: 2}
		if kind == partialHeld {
			tp.Held = [][]float64{{1, 2, 3}, {4, 5, 6}}
		} else {
			tp.Hi = []float64{1, 2, 3}
			tp.Lo = []float64{0, 0, 0}
		}
		enc, err := AppendTrainPartial(nil, tp)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}

	folded := valid(partialWeighted)
	held := valid(partialHeld)

	// Every truncation of both layouts must fail typed, never panic.
	for _, enc := range [][]byte{folded, held} {
		for cut := 0; cut < len(enc); cut++ {
			if _, err := ParseTrainPartial(enc[:cut]); !errors.Is(err, ErrMalformed) {
				t.Fatalf("truncated at %d/%d: want ErrMalformed, got %v", cut, len(enc), err)
			}
		}
		if extra := append(append([]byte(nil), enc...), 0); true {
			if _, err := ParseTrainPartial(extra); !errors.Is(err, ErrMalformed) {
				t.Fatalf("trailing byte: want ErrMalformed, got %v", err)
			}
		}
	}

	// A held partial lying about its count must be rejected on the bytes
	// present, before the decoder sizes any allocation from it.
	lying := append([]byte(nil), held...)
	// count is at offset: 2 + len("edge") + kind(1) + leaf(4) + drop(4) + samples(8)
	off := 2 + 4 + 1 + 4 + 4 + 8
	lying[off] = 0xff
	lying[off+1] = 0xff
	lying[off+2] = 0xff
	lying[off+3] = 0x7f
	if _, err := ParseTrainPartial(lying); !errors.Is(err, ErrMalformed) {
		t.Fatalf("lying count: want ErrMalformed, got %v", err)
	}

	// Zero dim/count are invalid in either layout.
	zero := append([]byte(nil), folded...)
	zoff := off // count offset; dim sits after loss/seconds/bytes (8*4) fields
	zero[zoff], zero[zoff+1], zero[zoff+2], zero[zoff+3] = 0, 0, 0, 0
	if _, err := ParseTrainPartial(zero); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero count: want ErrMalformed, got %v", err)
	}
}

// The HelloOK role byte rides at the payload tail so v1 peers that never
// send it still parse — absent means station.
func TestHelloOKRoleRoundTripAndBackcompat(t *testing.T) {
	withRole, err := AppendHelloOK(nil, HelloOK{StationID: "edge-7", ModelDim: 361, NumSamples: 4000, Role: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ParseHelloOK(withRole)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Role != 1 || ok.StationID != "edge-7" || ok.ModelDim != 361 || ok.NumSamples != 4000 {
		t.Fatalf("role round trip mangled the frame: %+v", ok)
	}
	if want := HelloOKBytes(len("edge-7")) - HeaderBytes; len(withRole) != want {
		t.Fatalf("payload %d bytes, HelloOKBytes says %d", len(withRole), want)
	}

	// A legacy payload ends at NumSamples; the missing byte defaults to
	// the station role.
	legacy := withRole[:len(withRole)-1]
	ok, err = ParseHelloOK(legacy)
	if err != nil {
		t.Fatalf("legacy HelloOK without role byte must parse: %v", err)
	}
	if ok.Role != 0 {
		t.Fatalf("legacy HelloOK decoded role %d, want station (0)", ok.Role)
	}
}

// The Train frame's partial-kind byte must round-trip and reject unknown
// kinds at parse time — a root must not silently fold a kind it does not
// understand.
func TestTrainPartialKindRoundTrip(t *testing.T) {
	b := AppendTrain(nil, Train{Round: 3, Epochs: 1, BatchSize: 8, LearningRate: 0.01,
		UpdateCodec: VecF64, PartialKind: partialHeld})
	tr, rest, err := ParseTrain(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || tr.PartialKind != partialHeld || tr.Round != 3 {
		t.Fatalf("train round trip mangled: %+v rest=%d", tr, len(rest))
	}

	bad := append([]byte(nil), b...)
	bad[len(bad)-1] = partialKindMax + 1
	if _, _, err := ParseTrain(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown partial kind: want ErrMalformed, got %v", err)
	}
}
