package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// VecCodec identifies how a weight vector is encoded on the wire. Vector
// payloads are self-describing (the codec byte leads the payload), so the
// decoder never guesses.
type VecCodec uint8

// Vector encodings, ordered by compression level (maxVecCodec relies on
// the ordering).
const (
	// VecF64 is the uncompressed encoding: raw little-endian float64 bits
	// (8 bytes/parameter), bulk-copied with no per-element conversion.
	VecF64 VecCodec = 0
	// VecF32 downcasts each value to float32 (4 bytes/parameter,
	// ~1e-7 relative rounding error).
	VecF32 VecCodec = 1
	// VecQ8 is int8 linear quantization of the *delta* against a
	// reference vector both peers hold (1 byte/parameter plus one float32
	// scale per 4096-value chunk). Per-coordinate error is bounded by
	// half the chunk's quantization step, maxabs(delta)/254.
	VecQ8 VecCodec = 2
)

// String names the codec as accepted by ParseCodec-style flags.
func (c VecCodec) String() string {
	switch c {
	case VecF64:
		return "f64"
	case VecF32:
		return "f32"
	case VecQ8:
		return "q8"
	default:
		return fmt.Sprintf("veccodec(%d)", uint8(c))
	}
}

// q8Chunk is the quantization block: one float32 scale per chunk keeps
// the relative error local (a few large coordinates cannot destroy the
// resolution of the whole vector) at ~0.1% size overhead.
const q8Chunk = 4096

// hostLE reports whether this machine is little-endian, enabling the
// bulk-memmove float64 fast path (the wire format is little-endian
// regardless; big-endian hosts fall back to per-element conversion).
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func f64Bits(v float64) uint64     { return math.Float64bits(v) }
func f64FromBits(b uint64) float64 { return math.Float64frombits(b) }

// VectorBytes returns the exact encoded size of an n-dim vector under
// codec, including the codec byte and length prefix.
func VectorBytes(codec VecCodec, n int) int {
	const meta = 1 + 4
	switch codec {
	case VecF32:
		return meta + 4*n
	case VecQ8:
		chunks := (n + q8Chunk - 1) / q8Chunk
		return meta + 4*chunks + n
	default:
		return meta + 8*n
	}
}

// AppendVector encodes v onto b with the given codec. For VecQ8, ref is
// the shared reference vector (same length as v) the receiver will decode
// against. If recon is non-nil (same length as v) it receives the exact
// values the receiver will reconstruct — the sender tracks it as the next
// round's delta reference, guaranteeing both ends quantize against
// identical bits.
func AppendVector(b []byte, codec VecCodec, v, ref, recon []float64) ([]byte, error) {
	if recon != nil && len(recon) != len(v) {
		return nil, fmt.Errorf("%w: recon %d for vector %d", ErrMalformed, len(recon), len(v))
	}
	b = append(b, byte(codec))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	switch codec {
	case VecF64:
		b = appendF64s(b, v)
		if recon != nil {
			copy(recon, v)
		}
	case VecF32:
		for i, x := range v {
			f := float32(x)
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(f))
			if recon != nil {
				recon[i] = float64(f)
			}
		}
	case VecQ8:
		if ref == nil {
			return nil, ErrNoRef
		}
		if len(ref) != len(v) {
			return nil, fmt.Errorf("%w: reference %d for vector %d", ErrMalformed, len(ref), len(v))
		}
		for off := 0; off < len(v); off += q8Chunk {
			end := off + q8Chunk
			if end > len(v) {
				end = len(v)
			}
			b = appendQ8Chunk(b, v[off:end], ref[off:end], reconSlice(recon, off, end))
		}
	default:
		return nil, fmt.Errorf("%w: unknown vector codec %d", ErrMalformed, codec)
	}
	return b, nil
}

func reconSlice(recon []float64, off, end int) []float64 {
	if recon == nil {
		return nil
	}
	return recon[off:end]
}

// appendQ8Chunk quantizes one chunk's delta (v − ref) to int8 with a
// shared float32 scale. The scale is stored (and used for quantizing) in
// its float32-rounded form so encoder reconstruction and decoder output
// are bit-identical.
func appendQ8Chunk(b []byte, v, ref, recon []float64) []byte {
	var maxAbs float64
	for i := range v {
		d := v[i] - ref[i]
		if d < 0 {
			d = -d
		}
		if d > maxAbs {
			maxAbs = d
		}
	}
	s32 := float32(maxAbs / 127)
	s := float64(s32)
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(s32))
	if s == 0 {
		for i := range v {
			b = append(b, 0)
			if recon != nil {
				recon[i] = ref[i]
			}
		}
		return b
	}
	for i := range v {
		q := int(math.Round((v[i] - ref[i]) / s))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		b = append(b, byte(int8(q)))
		if recon != nil {
			recon[i] = ref[i] + float64(q)*s
		}
	}
	return b
}

// DecodeVector parses one encoded vector from the front of p. The result
// reuses dst's backing array when capacity allows (pass a retained
// scratch slice for allocation-free steady state, or nil for a fresh
// vector). ref must be the sender's reference vector for VecQ8 payloads
// and is ignored otherwise. Returns the decoded vector and the bytes
// remaining after it.
func DecodeVector(p []byte, dst, ref []float64) ([]float64, []byte, error) {
	if len(p) < 5 {
		return nil, nil, fmt.Errorf("%w: short vector header", ErrMalformed)
	}
	codec := VecCodec(p[0])
	n := int(binary.LittleEndian.Uint32(p[1:5]))
	p = p[5:]
	// Reject unknown codecs and short payloads BEFORE sizing dst: the
	// length field is attacker-controlled, and only the payload-size
	// check bounds the allocation below.
	if codec > VecQ8 {
		return nil, nil, fmt.Errorf("%w: unknown vector codec %d", ErrMalformed, codec)
	}
	if need := VectorBytes(codec, n) - 5; len(p) < need {
		return nil, nil, fmt.Errorf("%w: vector wants %d bytes, payload has %d", ErrMalformed, need, len(p))
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	switch codec {
	case VecF64:
		decodeF64s(dst, p[:8*n])
		p = p[8*n:]
	case VecF32:
		for i := 0; i < n; i++ {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:])))
		}
		p = p[4*n:]
	case VecQ8:
		if ref == nil {
			return nil, nil, ErrNoRef
		}
		if len(ref) != n {
			return nil, nil, fmt.Errorf("%w: reference %d for vector %d", ErrNoRef, len(ref), n)
		}
		for off := 0; off < n; off += q8Chunk {
			end := off + q8Chunk
			if end > n {
				end = n
			}
			s := float64(math.Float32frombits(binary.LittleEndian.Uint32(p)))
			p = p[4:]
			for i := off; i < end; i++ {
				dst[i] = ref[i] + float64(int8(p[i-off]))*s
			}
			p = p[end-off:]
		}
	}
	return dst, p, nil
}

// appendF64s appends the raw little-endian bits of v: a single memmove on
// little-endian hosts, a conversion loop elsewhere.
func appendF64s(b []byte, v []float64) []byte {
	if hostLE && len(v) > 0 {
		return append(b, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))...)
	}
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

// decodeF64s fills dst from raw little-endian float64 bits (len(p) must
// be 8*len(dst)): a single memmove on little-endian hosts.
func decodeF64s(dst []float64, p []byte) {
	if hostLE && len(dst) > 0 {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), p)
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
}

// RoundTripF32 applies the exact value transformation a VecF32
// encode/decode cycle performs, in place. In-process federations use it
// to simulate the wire codec for accuracy-parity measurement.
func RoundTripF32(v []float64) {
	for i, x := range v {
		v[i] = float64(float32(x))
	}
}

// RoundTripQ8 applies the exact value transformation a VecQ8
// encode/decode cycle performs (quantize the delta against ref, then
// reconstruct), in place.
func RoundTripQ8(v, ref []float64) error {
	if len(ref) != len(v) {
		return fmt.Errorf("%w: reference %d for vector %d", ErrNoRef, len(ref), len(v))
	}
	for off := 0; off < len(v); off += q8Chunk {
		end := off + q8Chunk
		if end > len(v) {
			end = len(v)
		}
		roundTripQ8Chunk(v[off:end], ref[off:end])
	}
	return nil
}

func roundTripQ8Chunk(v, ref []float64) {
	var maxAbs float64
	for i := range v {
		d := v[i] - ref[i]
		if d < 0 {
			d = -d
		}
		if d > maxAbs {
			maxAbs = d
		}
	}
	s := float64(float32(maxAbs / 127))
	if s == 0 {
		copy(v, ref)
		return
	}
	for i := range v {
		q := int(math.Round((v[i] - ref[i]) / s))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		v[i] = ref[i] + float64(q)*s
	}
}
