package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestCanaryFrameRoundTrips: every MsgCanary* payload survives
// encode→frame→decode bit-exactly and the size helpers are exact.
func TestCanaryFrameRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(pipeConn{r: &buf, w: &buf})
	weights := []float64{0.5, -1.25, 3, 0.0625}

	if err := c.WriteFrame(MsgCanaryPush, func(b []byte) ([]byte, error) {
		return AppendVector(AppendCanaryPush(b, 0.07), VecF64, weights, nil, nil)
	}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != CanaryPushBytes(VecF64, len(weights)) {
		t.Fatalf("push frame %d bytes, CanaryPushBytes %d", buf.Len(), CanaryPushBytes(VecF64, len(weights)))
	}
	fr, err := c.ReadFrame()
	if err != nil || fr.Type != MsgCanaryPush {
		t.Fatalf("read push: %v %v", fr.Type, err)
	}
	thr, rest, err := ParseCanaryPush(fr.Payload)
	if err != nil || thr != 0.07 {
		t.Fatalf("parse push: thr %v err %v", thr, err)
	}
	dec, _, err := DecodeVector(rest, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range weights {
		if dec[i] != weights[i] {
			t.Fatalf("weight %d: %v != %v", i, dec[i], weights[i])
		}
	}

	buf.Reset()
	if err := c.WriteFrame(MsgCanaryPushOK, func(b []byte) ([]byte, error) {
		return AppendCanaryPushOK(b, 42)
	}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != CanaryPushOKBytes() {
		t.Fatalf("pushOK frame %d bytes, want %d", buf.Len(), CanaryPushOKBytes())
	}
	if fr, err = c.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if gen, err := ParseCanaryPushOK(fr.Payload); err != nil || gen != 42 {
		t.Fatalf("parse pushOK: gen %d err %v", gen, err)
	}

	buf.Reset()
	if err := c.WriteFrame(MsgCanaryStatus, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != CanaryStatusBytes() {
		t.Fatalf("status frame %d bytes, want %d", buf.Len(), CanaryStatusBytes())
	}
	if _, err = c.ReadFrame(); err != nil {
		t.Fatal(err)
	}

	want := CanaryStatus{
		Phase: CanaryPhaseShadow, Gen: 9, ServingEpoch: 4, Samples: 321,
		Promotions: 3, Rollbacks: 2, CohortBasisPoints: 1250,
		FlipRate: 0.015, AnomalyDelta: 0.004, MeanShift: 0.75, QuantileShift: 1.5,
		LastOutcome: CanaryOutcomePromoted, LastReason: "within budget",
	}
	buf.Reset()
	if err := c.WriteFrame(MsgCanaryStatusOK, func(b []byte) ([]byte, error) {
		return AppendCanaryStatusOK(b, want)
	}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != CanaryStatusOKBytes(len(want.LastReason)) {
		t.Fatalf("statusOK frame %d bytes, want %d", buf.Len(), CanaryStatusOKBytes(len(want.LastReason)))
	}
	if fr, err = c.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCanaryStatusOK(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("status round trip:\n got  %+v\n want %+v", got, want)
	}

	buf.Reset()
	if err := c.WriteFrame(MsgCanaryCtl, func(b []byte) ([]byte, error) {
		return AppendCanaryCtl(b, CanaryPromote, "ship it")
	}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != CanaryCtlBytes(len("ship it")) {
		t.Fatalf("ctl frame %d bytes, want %d", buf.Len(), CanaryCtlBytes(len("ship it")))
	}
	if fr, err = c.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	op, reason, err := ParseCanaryCtl(fr.Payload)
	if err != nil || op != CanaryPromote || reason != "ship it" {
		t.Fatalf("parse ctl: op %d reason %q err %v", op, reason, err)
	}

	buf.Reset()
	if err := c.WriteFrame(MsgCanaryCtlOK, func(b []byte) ([]byte, error) {
		return AppendCanaryCtlOK(b, 5)
	}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != CanaryCtlOKBytes() {
		t.Fatalf("ctlOK frame %d bytes, want %d", buf.Len(), CanaryCtlOKBytes())
	}
	if fr, err = c.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if epoch, err := ParseCanaryCtlOK(fr.Payload); err != nil || epoch != 5 {
		t.Fatalf("parse ctlOK: epoch %d err %v", epoch, err)
	}
}

// TestCanaryParseRejections: malformed canary payloads fail with
// ErrMalformed instead of panicking or decoding garbage.
func TestCanaryParseRejections(t *testing.T) {
	if _, err := ParseCanaryPushOK(nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty pushOK: %v", err)
	}
	if _, err := ParseCanaryStatusOK(make([]byte, canaryStatusFixedBytes-1)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short statusOK: %v", err)
	}
	if _, err := ParseCanaryStatusOK(make([]byte, canaryStatusFixedBytes)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("statusOK missing reason length: %v", err)
	}
	if _, _, err := ParseCanaryCtl(nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty ctl: %v", err)
	}
	if _, _, err := ParseCanaryCtl([]byte{9, 0, 0}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown ctl op: %v", err)
	}
	if _, err := ParseCanaryCtlOK(nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty ctlOK: %v", err)
	}
}
