package wire

import (
	"encoding/binary"
	"fmt"
)

// Partial kinds mirrored from the fed package (wire must not import it).
// Weighted/uniform partials ship a pre-folded compensated sum; held
// partials relay the downstream update vectors unfolded (order statistics
// cannot be pre-folded).
const (
	partialWeighted uint8 = 0
	partialUniform  uint8 = 1
	partialHeld     uint8 = 2

	partialKindMax = partialHeld
)

// TrainPartial is an aggregation node's answer to MsgTrain: its subtree's
// partial aggregate plus the bookkeeping the parent folds into its round
// statistics. Vector payloads are raw little-endian float64 regardless of
// the tree's update codec — partial sums must merge losslessly for the
// root's fold to stay bit-identical to a flat round, and quantizing the
// compensation terms would defeat them entirely.
//
// Payload layout:
//
//	nodeID            string (u16 len + bytes)
//	kind              u8
//	leafParticipants  u32
//	leafDropped       u32
//	sampleSum         u64
//	count             u32    folded (or held) downstream updates
//	lossSum           f64
//	clientSeconds     f64
//	bytesDown         u64    the node's own downstream round traffic
//	bytesUp           u64
//	dim               u32
//	-- kind weighted/uniform --
//	weightTotal       f64
//	accHi             dim × f64
//	accLo             dim × f64
//	-- kind held --
//	vectors           count × dim × f64
type TrainPartial struct {
	NodeID           string
	Kind             uint8
	LeafParticipants int
	LeafDropped      int
	SampleSum        uint64
	Count            int
	LossSum          float64
	ClientSeconds    float64
	BytesDown        uint64
	BytesUp          uint64
	Dim              int
	WeightTotal      float64
	Hi, Lo           []float64
	Held             [][]float64
}

// partialMetaBytes is the fixed-field size after the node-ID string.
const partialMetaBytes = 1 + 4 + 4 + 8 + 4 + 8 + 8 + 8 + 8 + 4

// AppendTrainPartial encodes t onto b.
func AppendTrainPartial(b []byte, t TrainPartial) ([]byte, error) {
	if t.Kind > partialKindMax {
		return nil, fmt.Errorf("%w: partial kind %d", ErrMalformed, t.Kind)
	}
	b, err := appendString(b, t.NodeID)
	if err != nil {
		return nil, err
	}
	b = append(b, t.Kind)
	b = binary.LittleEndian.AppendUint32(b, uint32(t.LeafParticipants))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.LeafDropped))
	b = binary.LittleEndian.AppendUint64(b, t.SampleSum)
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Count))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(t.LossSum))
	b = binary.LittleEndian.AppendUint64(b, f64Bits(t.ClientSeconds))
	b = binary.LittleEndian.AppendUint64(b, t.BytesDown)
	b = binary.LittleEndian.AppendUint64(b, t.BytesUp)
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Dim))
	if t.Kind == partialHeld {
		if len(t.Held) != t.Count {
			return nil, fmt.Errorf("%w: held partial carries %d vectors, count says %d",
				ErrMalformed, len(t.Held), t.Count)
		}
		for _, w := range t.Held {
			if len(w) != t.Dim {
				return nil, fmt.Errorf("%w: held vector dim %d != %d", ErrMalformed, len(w), t.Dim)
			}
			b = appendF64s(b, w)
		}
		return b, nil
	}
	if len(t.Hi) != t.Dim || len(t.Lo) != t.Dim {
		return nil, fmt.Errorf("%w: folded partial hi/lo dims %d/%d != %d",
			ErrMalformed, len(t.Hi), len(t.Lo), t.Dim)
	}
	b = binary.LittleEndian.AppendUint64(b, f64Bits(t.WeightTotal))
	b = appendF64s(b, t.Hi)
	b = appendF64s(b, t.Lo)
	return b, nil
}

func parseU64(p []byte) (uint64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("%w: short uint64", ErrMalformed)
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// ParseTrainPartial decodes a MsgTrainPartial payload. The returned
// vectors are fresh allocations (the payload buffer is connection-owned
// and reused by the next read).
func ParseTrainPartial(p []byte) (TrainPartial, error) {
	var t TrainPartial
	var err error
	if t.NodeID, p, err = parseString(p); err != nil {
		return t, err
	}
	if len(p) < partialMetaBytes {
		return t, fmt.Errorf("%w: short partial meta", ErrMalformed)
	}
	t.Kind = p[0]
	p = p[1:]
	if t.Kind > partialKindMax {
		return t, fmt.Errorf("%w: unknown partial kind %d", ErrMalformed, t.Kind)
	}
	if t.LeafParticipants, p, err = parseU32(p); err != nil {
		return t, err
	}
	if t.LeafDropped, p, err = parseU32(p); err != nil {
		return t, err
	}
	if t.SampleSum, p, err = parseU64(p); err != nil {
		return t, err
	}
	if t.Count, p, err = parseU32(p); err != nil {
		return t, err
	}
	if t.LossSum, p, err = parseF64(p); err != nil {
		return t, err
	}
	if t.ClientSeconds, p, err = parseF64(p); err != nil {
		return t, err
	}
	if t.BytesDown, p, err = parseU64(p); err != nil {
		return t, err
	}
	if t.BytesUp, p, err = parseU64(p); err != nil {
		return t, err
	}
	if t.Dim, p, err = parseU32(p); err != nil {
		return t, err
	}
	if t.Dim <= 0 || t.Count <= 0 {
		return t, fmt.Errorf("%w: partial dim %d count %d", ErrMalformed, t.Dim, t.Count)
	}
	if t.Kind == partialHeld {
		// Size check before any allocation: a lying count/dim must fail on
		// the bytes actually present, not force the allocation first.
		need := t.Count * t.Dim * 8
		if t.Count > MaxFrameBytes/8/t.Dim || len(p) != need {
			return t, fmt.Errorf("%w: held partial wants %d×%d vectors, payload has %d bytes",
				ErrMalformed, t.Count, t.Dim, len(p))
		}
		t.Held = make([][]float64, t.Count)
		flat := make([]float64, t.Count*t.Dim)
		for i := range t.Held {
			t.Held[i] = flat[i*t.Dim : (i+1)*t.Dim]
			decodeF64s(t.Held[i], p[:t.Dim*8])
			p = p[t.Dim*8:]
		}
		return t, nil
	}
	if t.WeightTotal, p, err = parseF64(p); err != nil {
		return t, err
	}
	if t.Dim > MaxFrameBytes/16 || len(p) != 2*t.Dim*8 {
		return t, fmt.Errorf("%w: folded partial wants 2×%d floats, payload has %d bytes",
			ErrMalformed, t.Dim, len(p))
	}
	t.Hi = make([]float64, t.Dim)
	t.Lo = make([]float64, t.Dim)
	decodeF64s(t.Hi, p[:t.Dim*8])
	decodeF64s(t.Lo, p[t.Dim*8:])
	return t, nil
}

// TrainPartialBytes is the exact size of a TrainPartial frame: kind
// partialHeld carries count unfolded vectors, the folded kinds carry the
// weight total plus two dim-length float64 arrays.
func TrainPartialBytes(kind uint8, dim, count, idLen int) int {
	n := HeaderBytes + 2 + idLen + partialMetaBytes
	if kind == partialHeld {
		return n + count*dim*8
	}
	return n + 8 + 2*dim*8
}
