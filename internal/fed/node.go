package fed

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/evfed/evfed/internal/fed/wire"
	"github.com/evfed/evfed/internal/rng"
)

// ErrNonFiniteUpdate marks a client update carrying NaN or Inf weights —
// diverged local training or bytes corrupted in flight. The update is
// rejected before aggregation (a single non-finite weight would poison
// the global irreversibly) and treated as that client's round error.
var ErrNonFiniteUpdate = errors.New("fed: non-finite client update")

// node is the role-agnostic aggregation engine shared by the root
// Coordinator and the regional Edge: one round of broadcast → local train
// → streaming fold over a pool of downstream peers, under a concurrency
// bound, a round deadline, deterministic failure injection, and the
// delta-reference bookkeeping of the wire codec. The node does not care
// whether a peer is a leaf station (Train → Update) or another
// aggregation node (TrainPartial → Partial) — it dispatches per peer, so
// tiers compose freely.
//
// What the node deliberately does not own: the global model, the round
// loop, client sampling, and what happens to the fold (Finish into a new
// global at the root, ExportPartial upward at an edge). Those stay with
// the role built on top.
type node struct {
	clients []ClientHandle
	cfg     nodeConfig

	// sentFull[i]: peer i completed a training call, so (in the wire
	// model) its connection holds a delta reference for the next
	// broadcast. Persists across rounds, like the connections it mirrors.
	sentFull []bool
	// resolved is per-round scratch, touched only by the node's own
	// goroutine — safe to reuse.
	resolved []bool
}

// nodeConfig is the subset of round-engine knobs a node needs; both
// Config (root) and EdgeConfig (edge tier) lower into it.
type nodeConfig struct {
	Parallel             bool
	MaxConcurrentClients int
	RoundDeadline        time.Duration
	TolerateClientErrors bool
	Codec                Codec
	Failures             *FailurePlan
}

func newNode(clients []ClientHandle, cfg nodeConfig) *node {
	n := len(clients)
	return &node{
		clients:  clients,
		cfg:      cfg,
		sentFull: make([]bool, n),
		resolved: make([]bool, n),
	}
}

// roundReport is one runRound's outcome: everything the role on top needs
// to build a RoundStat (root) or a Partial (edge).
type roundReport struct {
	// Participants and Dropped list direct downstream peer IDs; Errs maps
	// a dropped peer to the tolerated error that dropped it.
	Participants []string
	Dropped      []string
	Errs         map[string]string
	// LeafParticipants and LeafDropped count leaf stations across the
	// whole subtree: a direct station counts once, an edge peer
	// contributes its own subtree's counts. A peer that drops before
	// reporting counts once regardless of its subtree size (the node
	// cannot see behind a dead edge).
	LeafParticipants int
	LeafDropped      int
	// LossSum is the sample-weighted final-loss sum and SampleSum the
	// participant sample total, spanning the subtree.
	LossSum   float64
	SampleSum int
	// ClientSeconds sums client-reported local training time.
	ClientSeconds float64
	// BytesDown and BytesUp are this node's own modeled downstream round
	// traffic; SubDown and SubUp total the traffic reported by downstream
	// aggregation nodes for their subtrees.
	BytesDown, BytesUp uint64
	SubDown, SubUp     uint64
	// AbandonedAny reports that a selected peer was abandoned at the
	// round deadline: the round's broadcast buffer must not be recycled
	// (the straggler goroutine may read it arbitrarily late).
	AbandonedAny bool
}

// runRound executes one round over the selected peers: broadcast global,
// train each under the concurrency bound and deadline, and fold the
// responses into stream in client-index order. Failure-injection
// decisions are drawn from failRNG up front for every peer in client
// order, so they are deterministic regardless of scheduling. The caller
// owns stream.Begin-before / Finish-or-Export-after; global must remain
// stable until a future round whose report had AbandonedAny == false.
func (nd *node) runRound(round int, selected []int, global []float64, ltc LocalTrainConfig,
	stream StreamAggregator, failRNG *rng.Source, roundStart time.Time) (*roundReport, error) {

	n := len(nd.clients)
	dim := len(global)
	rep := &roundReport{}

	// The slices the training goroutines touch are allocated per round:
	// an abandoned straggler from an earlier round may still be
	// reading/writing its round's slots, so they must never be recycled.
	for i := 0; i < n; i++ {
		nd.resolved[i] = false
	}
	updates := make([]*Update, n)
	partials := make([]*Partial, n)
	errs := make([]error, n)
	dropped := make([]bool, n)
	delayed := make([]bool, n)
	if f := nd.cfg.Failures; f != nil {
		for i := range nd.clients {
			dropped[i] = failRNG.Bernoulli(f.DropoutProb)
			delayed[i] = failRNG.Bernoulli(f.StragglerProb)
		}
	}

	// Stragglers abandoned at the round deadline keep running into later
	// rounds; they must read this round's broadcast snapshot, not the
	// caller's live global variable.
	roundGlobal := global
	trainOne := func(i int) {
		if dropped[i] {
			return
		}
		if delayed[i] && nd.cfg.Failures != nil {
			time.Sleep(nd.cfg.Failures.StragglerDelay)
		}
		if pt, ok := nd.clients[i].(PartialTrainer); ok {
			p, err := pt.TrainPartial(roundGlobal, ltc)
			if err != nil {
				errs[i] = err
				return
			}
			partials[i] = &p
			return
		}
		u, err := nd.clients[i].Train(roundGlobal, ltc)
		if err != nil {
			errs[i] = err
			return
		}
		updates[i] = &u
	}

	// Streaming consumption: peers are folded into the aggregator in
	// client-index order, as far as the resolution prefix reaches, every
	// time a completion lands. All consumption happens on this goroutine
	// (runSelected's event loop), so no locking is needed.
	cursor := 0
	var roundErr error
	dropWithError := func(id string, err error) {
		rep.Dropped = append(rep.Dropped, id)
		rep.LeafDropped++
		if rep.Errs == nil {
			rep.Errs = make(map[string]string)
		}
		rep.Errs[id] = err.Error()
	}
	consume := func(i int, abandoned bool) {
		id := nd.clients[i].ID()
		wasFull := !nd.sentFull[i]
		switch {
		case dropped[i]:
			// Injected dropout: the training call never happened, so no
			// traffic is counted.
			rep.Dropped = append(rep.Dropped, id)
			rep.LeafDropped++
			return
		case abandoned:
			rep.BytesDown += nd.downBytes(dim, wasFull)
			// The in-flight call's fate is unknown; mirror the
			// conservative transport behaviour (reference dropped, next
			// broadcast full).
			nd.sentFull[i] = false
			if !nd.cfg.TolerateClientErrors {
				if roundErr == nil {
					roundErr = fmt.Errorf("fed: round %d: client %s: %w", round, id, ErrRoundDeadline)
				}
				return
			}
			dropWithError(id, ErrRoundDeadline)
		case errs[i] != nil:
			rep.BytesDown += nd.downBytes(dim, wasFull)
			if !errors.Is(errs[i], ErrRemote) {
				// A transport error resets the real connection and with it
				// the delta reference; an application error (ErrRemote)
				// leaves both intact.
				nd.sentFull[i] = false
			}
			if !nd.cfg.TolerateClientErrors {
				if roundErr == nil {
					roundErr = fmt.Errorf("fed: round %d: %w", round, errs[i])
				}
				return
			}
			dropWithError(id, errs[i])
		case partials[i] != nil:
			p := partials[i]
			rep.BytesDown += nd.downBytes(dim, wasFull)
			rep.BytesUp += uint64(wire.TrainPartialBytes(uint8(p.Kind), p.Dim, p.Count, len(p.NodeID)))
			if roundErr == nil {
				ps, ok := stream.(partialStream)
				if !ok {
					roundErr = fmt.Errorf("fed: round %d: %w: aggregator %s cannot merge partial aggregates",
						round, ErrBadConfig, stream.Name())
				} else if err := ps.AddPartial(p); err != nil {
					roundErr = fmt.Errorf("fed: round %d: %w", round, err)
				}
			}
			rep.Participants = append(rep.Participants, id)
			rep.LeafParticipants += p.LeafParticipants
			rep.LeafDropped += p.LeafDropped
			rep.LossSum += p.LossSum
			rep.SampleSum += p.SampleSum
			rep.ClientSeconds += p.ClientSeconds
			rep.SubDown += p.BytesDown
			rep.SubUp += p.BytesUp
			nd.sentFull[i] = true
			partials[i] = nil
		case updates[i] != nil:
			u := updates[i]
			rep.BytesDown += nd.downBytes(dim, wasFull)
			rep.BytesUp += nd.upBytes(dim, len(u.ClientID))
			if j := firstNonFinite(u.Weights); j >= 0 {
				// The frame itself arrived intact as far as the transport is
				// concerned (traffic counted, reference committed like an
				// application error), but its payload must not reach the
				// aggregator.
				nd.sentFull[i] = true
				updates[i] = nil
				err := fmt.Errorf("%w: weight %d", ErrNonFiniteUpdate, j)
				if !nd.cfg.TolerateClientErrors {
					if roundErr == nil {
						roundErr = fmt.Errorf("fed: round %d: client %s: %w", round, id, err)
					}
					return
				}
				dropWithError(id, err)
				return
			}
			if roundErr == nil {
				if err := stream.Add(u); err != nil {
					roundErr = fmt.Errorf("fed: round %d: %w", round, err)
				}
			}
			rep.Participants = append(rep.Participants, id)
			rep.LeafParticipants++
			rep.LossSum += u.FinalLoss * float64(u.NumSamples)
			rep.SampleSum += u.NumSamples
			rep.ClientSeconds += u.TrainSeconds
			nd.sentFull[i] = true
			updates[i] = nil // release: mean-family rules consumed it via axpy
		}
	}
	onDone := func(i int) {
		// The channel receive in runSelected orders the training
		// goroutine's writes to updates/partials/errs before this read.
		nd.resolved[i] = true
		for cursor < len(selected) && nd.resolved[selected[cursor]] {
			consume(selected[cursor], false)
			cursor++
		}
	}

	nd.runSelected(selected, trainOne, roundStart, onDone)

	// Whatever the cursor has not reached is either a straggler abandoned
	// at the deadline (unresolved; its slot is never read — the goroutine
	// may still be writing it) or a peer queued behind one.
	for ; cursor < len(selected); cursor++ {
		i := selected[cursor]
		if !nd.resolved[i] && !dropped[i] {
			rep.AbandonedAny = true
		}
		consume(i, !nd.resolved[i])
	}
	if roundErr != nil {
		return nil, roundErr
	}
	return rep, nil
}

// firstNonFinite returns the index of the first NaN/Inf weight, or -1.
func firstNonFinite(w []float64) int {
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// deltaRefs snapshots the per-peer delta-reference flags by peer ID (the
// wire model's "connection holds a reference" bits) for a checkpoint.
func (nd *node) deltaRefs() map[string]bool {
	refs := make(map[string]bool, len(nd.clients))
	for i, c := range nd.clients {
		refs[c.ID()] = nd.sentFull[i]
	}
	return refs
}

// connRefHolder marks a handle whose delta reference lives in a network
// connection rather than in the handle itself. Such references die with
// the process: a resumed coordinator dials fresh connections, and the
// transport's full-frame fallback re-establishes the reference on both
// ends at once. Restoring a checkpointed flag for one would desynchronize
// the byte model from the wire — and claim a reference the remote no
// longer holds.
type connRefHolder interface{ connScopedDeltaRef() }

// restoreDeltaRefs restores checkpointed delta-reference flags for
// handles whose references survive a process restart (in-process
// clients). Connection-scoped handles keep the fresh-connection default
// (next broadcast full-frame).
func (nd *node) restoreDeltaRefs(refs map[string]bool) {
	for i, c := range nd.clients {
		if _, scoped := c.(connRefHolder); scoped {
			continue
		}
		if v, ok := refs[c.ID()]; ok {
			nd.sentFull[i] = v
		}
	}
}

// downBytes models one broadcast's wire cost under the configured codec:
// the exact Train frame size. first selects the full-precision fallback a
// delta codec pays before the peer's connection holds a reference.
func (nd *node) downBytes(dim int, first bool) uint64 {
	return uint64(wireTrainBytes(nd.cfg.Codec, dim, first))
}

// upBytes models one update's wire cost: the exact TrainOK frame size.
func (nd *node) upBytes(dim, idLen int) uint64 {
	return uint64(wireTrainOKBytes(nd.cfg.Codec, dim, idLen))
}

// runSelected trains the selected peers under the configured concurrency
// bound and round deadline, invoking onDone(i) on this goroutine for
// every peer whose trainOne call completed before the deadline. Peers
// without an onDone call by return time were abandoned at the deadline;
// their updates/errs slots must not be read.
func (nd *node) runSelected(selected []int, trainOne func(int), roundStart time.Time, onDone func(int)) {
	deadline := nd.cfg.RoundDeadline

	if !nd.cfg.Parallel {
		if deadline <= 0 {
			for _, i := range selected {
				trainOne(i)
				onDone(i)
			}
			return
		}
		// Sequential order is preserved, but each peer runs in a
		// goroutine so an in-flight hung call can still be abandoned when
		// the round deadline fires.
		timer := time.NewTimer(deadline - time.Since(roundStart))
		defer timer.Stop()
		for _, i := range selected {
			ch := make(chan struct{})
			go func(i int) {
				trainOne(i)
				close(ch)
			}(i)
			select {
			case <-ch:
				onDone(i)
			case <-timer.C:
				// If the peer completed in the same instant the timer
				// fired, keep its result instead of discarding real work.
				select {
				case <-ch:
					onDone(i)
				default:
				}
				return // abandon the in-flight peer and the rest
			}
		}
		return
	}

	workers := nd.cfg.MaxConcurrentClients
	if workers <= 0 || workers > len(selected) {
		workers = len(selected)
	}
	// A fixed pool of workers pulls from a pre-filled, closed work channel
	// — workers goroutines total instead of one per selected peer, and
	// peers start in selection order.
	work := make(chan int, len(selected))
	for _, i := range selected {
		work <- i
	}
	close(work)
	// done is buffered so abandoned stragglers can report and exit
	// instead of leaking on a blocked send after the deadline fires.
	done := make(chan int, len(selected))
	// cancel keeps workers from starting stale Train calls after the
	// deadline has already cut the round off: a hung station pinning every
	// pool slot would otherwise cascade — the queued calls would run to
	// completion into later rounds, serialize behind the next round's call
	// to the same peer, and blow its deadline too. The re-check sits
	// between taking a work item and calling trainOne, so a worker whose
	// current call straggled past the deadline finishes that one call
	// (reporting into the buffered channel) and exits without starting
	// another.
	cancel := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range work {
				select {
				case <-cancel:
					return
				default:
				}
				trainOne(i)
				done <- i
			}
		}()
	}
	var timeout <-chan time.Time
	if deadline > 0 {
		timer := time.NewTimer(deadline - time.Since(roundStart))
		defer timer.Stop()
		timeout = timer.C
	}
	for remaining := len(selected); remaining > 0; {
		select {
		case i := <-done:
			// The channel receive orders the goroutine's writes to
			// updates/partials/errs before the consumer's reads.
			onDone(i)
			remaining--
		case <-timeout:
			close(cancel)
			// Keep completions that raced the timer: peers already in the
			// buffered channel finished before the deadline and must not
			// be discarded (fatal under strict mode, a wrongful drop under
			// tolerance).
			for {
				select {
				case i := <-done:
					onDone(i)
				default:
					return // cut off the true stragglers
				}
			}
		}
	}
}

// preflightClients runs the Hello handshake against every client handle
// that supports it, verifying model-dimension compatibility before round
// 1. A peer whose weight vector cannot be aggregated, or that speaks an
// incompatible protocol revision, is a configuration bug and always
// fatal; an unreachable peer is fatal only without tolerance (with
// tolerance it simply drops out of rounds). A peer that is unreachable at
// preflight and later joins with an incompatible model is not
// retro-validated: its Train calls fail every round and the reason is
// recorded in the round's Errors.
func preflightClients(clients []ClientHandle, wantDim int, tolerate bool) error {
	// Handshakes run concurrently: a sequential sweep would pay each
	// unreachable peer's full dial/retry ladder back to back, turning a
	// few dead peers into minutes of startup delay.
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for idx, c := range clients {
		p, ok := c.(Prober)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(idx int, id string, p Prober) {
			defer wg.Done()
			info, err := p.Hello()
			switch {
			case isProtocolMismatch(err):
				errs[idx] = fmt.Errorf("fed: preflight %s: %w", id, err)
			case err != nil:
				if !tolerate {
					errs[idx] = fmt.Errorf("fed: preflight %s: %w", id, err)
				}
			case info.ModelDim != wantDim:
				errs[idx] = fmt.Errorf("%w: station %s has %d parameters, coordinator expects %d",
					ErrDimMismatch, info.StationID, info.ModelDim, wantDim)
			}
		}(idx, c.ID(), p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
