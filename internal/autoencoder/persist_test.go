package autoencoder

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestDetectorSaveLoadRoundTrip(t *testing.T) {
	train := dailySine(300, 0.02, 21)
	det, _, err := Train(train, smallConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config() != det.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.Config(), det.Config())
	}
	// Scores must be identical: same weights, deterministic inference.
	test := dailySine(120, 0.02, 23)
	a, err := det.PointScores(test)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.PointScores(test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scores differ at %d after reload: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSaveUntrained(t *testing.T) {
	var det *Detector
	var buf bytes.Buffer
	if err := det.Save(&buf); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("want ErrNotTrained, got %v", err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a detector")); err == nil {
		t.Fatal("garbage input should error")
	}
}

func TestLoadTruncated(t *testing.T) {
	train := dailySine(200, 0.02, 24)
	det, _, err := Train(train, smallConfig(25))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input should error")
	}
}
