package autoencoder

import (
	"errors"
	"math"
	"testing"

	"github.com/evfed/evfed/internal/anomaly"
	"github.com/evfed/evfed/internal/rng"
)

// smallConfig is a scaled-down detector that trains in well under a second.
func smallConfig(seed uint64) Config {
	return Config{
		SeqLen:       12,
		EncoderUnits: 10,
		Bottleneck:   5,
		Dropout:      0.1,
		Epochs:       12,
		BatchSize:    16,
		LearningRate: 0.005,
		Patience:     10,
		ValFrac:      0.1,
		TrainStride:  2,
		Seed:         seed,
	}
}

// dailySine builds a clean periodic series in [0, 1].
func dailySine(n int, noise float64, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.5 + 0.35*math.Sin(2*math.Pi*float64(i)/12) + r.Normal(0, noise)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.SeqLen = 0 },
		func(c *Config) { c.EncoderUnits = 0 },
		func(c *Config) { c.Bottleneck = -1 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.LearningRate = 0 },
		func(c *Config) { c.TrainStride = 0 },
	}
	for i, mutate := range bads {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, _, err := Train(dailySine(100, 0.01, 1), cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

func TestTrainTooShort(t *testing.T) {
	cfg := smallConfig(1)
	if _, _, err := Train(make([]float64, cfg.SeqLen-1), cfg); err == nil {
		t.Fatal("short input should error")
	}
}

func TestDetectorSeparatesAnomalies(t *testing.T) {
	train := dailySine(400, 0.02, 2)
	det, hist, err := Train(train, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if hist.FinalTrainLoss() >= hist.TrainLoss[0] {
		t.Fatalf("training loss did not decrease: %v", hist.TrainLoss)
	}

	// Test series: same process with injected spikes.
	test := dailySine(200, 0.02, 4)
	truth := make([]bool, len(test))
	for i := 60; i < 66; i++ {
		test[i] = math.Min(1.5, test[i]*4)
		truth[i] = true
	}
	for i := 140; i < 144; i++ {
		test[i] = math.Min(1.5, test[i]*4)
		truth[i] = true
	}
	scores, err := det.PointScores(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(test) {
		t.Fatalf("scores length %d", len(scores))
	}
	// Mean score over anomalous points must dominate clean points.
	var anomSum, cleanSum float64
	var anomN, cleanN int
	for i, s := range scores {
		if truth[i] {
			anomSum += s
			anomN++
		} else {
			cleanSum += s
			cleanN++
		}
	}
	anomMean := anomSum / float64(anomN)
	cleanMean := cleanSum / float64(cleanN)
	if anomMean < 10*cleanMean {
		t.Fatalf("anomaly separation too weak: anomalous %v vs clean %v", anomMean, cleanMean)
	}
}

func TestDetectorAsScorer(t *testing.T) {
	train := dailySine(300, 0.02, 5)
	det, _, err := Train(train, smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	var scorer anomaly.Scorer = Adapter{det}
	if scorer.Name() == "" {
		t.Fatal("empty scorer name")
	}
	scores, err := scorer.Scores(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(train) {
		t.Fatalf("scores length %d", len(scores))
	}
}

func TestSequenceErrors(t *testing.T) {
	train := dailySine(300, 0.02, 7)
	det, _, err := Train(train, smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	errs, err := det.SequenceErrors(train)
	if err != nil {
		t.Fatal(err)
	}
	want := len(train) - det.Config().SeqLen + 1
	if len(errs) != want {
		t.Fatalf("sequence errors %d want %d", len(errs), want)
	}
	for i, e := range errs {
		if e < 0 || math.IsNaN(e) {
			t.Fatalf("bad error %v at %d", e, i)
		}
	}
}

func TestUntrainedDetectorErrors(t *testing.T) {
	var det *Detector
	if _, err := det.PointScores([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("want ErrNotTrained, got %v", err)
	}
	if _, err := det.SequenceErrors([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("want ErrNotTrained, got %v", err)
	}
}

func TestPointScoresTooShort(t *testing.T) {
	det, _, err := Train(dailySine(200, 0.02, 9), smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.PointScores(make([]float64, det.Config().SeqLen-1)); err == nil {
		t.Fatal("short scoring input should error")
	}
}

func TestPointScoresDeterministicAcrossWorkers(t *testing.T) {
	det, _, err := Train(dailySine(200, 0.02, 11), smallConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	test := dailySine(100, 0.02, 13)
	det.cfg.Workers = 1
	s1, err := det.PointScores(test)
	if err != nil {
		t.Fatal(err)
	}
	det.cfg.Workers = 8
	s8, err := det.PointScores(test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if math.Abs(s1[i]-s8[i]) > 1e-12 {
			t.Fatalf("scores differ across worker counts at %d: %v vs %v", i, s1[i], s8[i])
		}
	}
}
