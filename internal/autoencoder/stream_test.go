package autoencoder

import (
	"math"
	"testing"

	"github.com/evfed/evfed/internal/anomaly"
)

// TestStreamingMatchesBatchOnSpikes: the online detector (window ending at
// each point) must flag the same strong spikes the batch detector does.
func TestStreamingMatchesBatchOnSpikes(t *testing.T) {
	train := dailySine(400, 0.02, 31)
	det, _, err := Train(train, smallConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	adapter := Adapter{Detector: det}

	// Calibrate a threshold offline.
	f, err := anomaly.NewFilter(adapter, anomaly.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Calibrate(train); err != nil {
		t.Fatal(err)
	}
	thr, err := f.Threshold()
	if err != nil {
		t.Fatal(err)
	}

	// Live stream with two strong spikes.
	live := dailySine(150, 0.02, 33)
	truth := make([]bool, len(live))
	for i := 60; i < 64; i++ {
		live[i] = math.Min(1.6, live[i]*5)
		truth[i] = true
	}
	for i := 120; i < 123; i++ {
		live[i] = math.Min(1.6, live[i]*5)
		truth[i] = true
	}

	stream, err := anomaly.NewStream(adapter, thr)
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	falseFlags := 0
	for _, v := range live {
		d, err := stream.Push(v)
		if err != nil {
			t.Fatal(err)
		}
		if d.Flagged {
			if truth[d.Index] {
				caught++
			} else {
				falseFlags++
			}
		}
	}
	if caught < 4 {
		t.Fatalf("online detector caught only %d/7 spike points", caught)
	}
	if falseFlags > 8 {
		t.Fatalf("online detector produced %d false flags on 143 clean points", falseFlags)
	}
}

func TestScoreLastValidation(t *testing.T) {
	det, _, err := Train(dailySine(200, 0.02, 34), smallConfig(35))
	if err != nil {
		t.Fatal(err)
	}
	a := Adapter{Detector: det}
	if a.WindowLen() != det.Config().SeqLen {
		t.Fatalf("window len %d", a.WindowLen())
	}
	if _, err := a.ScoreLast(make([]float64, 3)); err == nil {
		t.Fatal("wrong window size should error")
	}
	var empty Adapter
	if empty.WindowLen() != 0 {
		t.Fatal("nil detector window len")
	}
	if _, err := empty.ScoreLast(make([]float64, 1)); err == nil {
		t.Fatal("nil detector should error")
	}
}
