// Package autoencoder implements the paper's unsupervised anomaly
// detector: an LSTM autoencoder (encoder LSTM(50)→LSTM(25), decoder
// RepeatVector→LSTM(25)→LSTM(50)→Dense(1), dropout 0.2) trained to
// reconstruct normal charging sequences. Reconstruction error — mean
// squared error between a sequence and its reconstruction — is the
// anomaly score; the 98th percentile of training-set errors becomes the
// detection threshold (applied in package anomaly).
package autoencoder

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/evfed/evfed/internal/nn"
	"github.com/evfed/evfed/internal/series"
)

// Errors returned by the package.
var (
	ErrBadConfig  = errors.New("autoencoder: invalid configuration")
	ErrNotTrained = errors.New("autoencoder: detector not trained")
)

// Config parameterizes the detector. DefaultConfig matches the paper.
type Config struct {
	// SeqLen is the reconstruction window length (paper: 24).
	SeqLen int
	// EncoderUnits is the outer LSTM width (paper: 50).
	EncoderUnits int
	// Bottleneck is the inner LSTM width (paper: 25).
	Bottleneck int
	// Dropout is the dropout rate (paper: 0.2).
	Dropout float64
	// Epochs bounds training passes; early stopping applies (patience 10).
	Epochs int
	// BatchSize is the minibatch size (paper: 32).
	BatchSize int
	// LearningRate feeds Adam (paper: 1e-3).
	LearningRate float64
	// Patience is the early-stopping patience (paper: 10).
	Patience int
	// ValFrac is the validation fraction for early stopping.
	ValFrac float64
	// TrainStride is the hop between training sequences (1 = fully
	// overlapping; larger values trade fidelity for speed).
	TrainStride int
	// Seed drives initialization, shuffling and dropout.
	Seed uint64
	// Workers is the parallel gradient worker count (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the paper's hyperparameters.
func DefaultConfig() Config {
	return Config{
		SeqLen:       24,
		EncoderUnits: 50,
		Bottleneck:   25,
		Dropout:      0.2,
		Epochs:       30,
		BatchSize:    32,
		LearningRate: 0.001,
		Patience:     10,
		ValFrac:      0.1,
		TrainStride:  1,
		Seed:         1,
	}
}

func (c Config) validate() error {
	switch {
	case c.SeqLen <= 0:
		return fmt.Errorf("%w: seqLen %d", ErrBadConfig, c.SeqLen)
	case c.EncoderUnits <= 0 || c.Bottleneck <= 0:
		return fmt.Errorf("%w: units %d/%d", ErrBadConfig, c.EncoderUnits, c.Bottleneck)
	case c.Epochs <= 0 || c.BatchSize <= 0:
		return fmt.Errorf("%w: epochs %d batch %d", ErrBadConfig, c.Epochs, c.BatchSize)
	case c.LearningRate <= 0:
		return fmt.Errorf("%w: lr %v", ErrBadConfig, c.LearningRate)
	case c.TrainStride <= 0:
		return fmt.Errorf("%w: stride %d", ErrBadConfig, c.TrainStride)
	}
	return nil
}

// Detector is a trained LSTM-autoencoder anomaly scorer. Values fed to the
// detector must be scaled the same way as the training data (the pipeline
// uses per-client MinMax scaling to [0, 1]).
type Detector struct {
	cfg   Config
	model *nn.Model

	// fleet is the lazily-built batch scorer behind ScoreWindows; the
	// mutex serializes fleet calls so the scorer's workspace keeps its
	// single-owner contract.
	fleetMu sync.Mutex
	fleet   *BatchScorer
}

// Train fits the autoencoder on normal (non-anomalous) values, as the
// paper prescribes: the model learns baseline reconstruction patterns and
// later scores deviations from them.
func Train(values []float64, cfg Config) (*Detector, nn.History, error) {
	if err := cfg.validate(); err != nil {
		return nil, nn.History{}, err
	}
	seqs, err := series.MakeSequences(values, cfg.SeqLen, cfg.TrainStride)
	if err != nil {
		return nil, nn.History{}, fmt.Errorf("autoencoder: build training sequences: %w", err)
	}
	model, err := nn.Build(nn.AutoencoderSpec(cfg.SeqLen, cfg.EncoderUnits, cfg.Bottleneck, cfg.Dropout), cfg.Seed)
	if err != nil {
		return nil, nn.History{}, fmt.Errorf("autoencoder: build model: %w", err)
	}
	inputs := make([]nn.Seq, len(seqs))
	for i, s := range seqs {
		inputs[i] = s
	}
	tc := nn.DefaultTrainConfig(cfg.Epochs, cfg.Seed+1)
	tc.BatchSize = cfg.BatchSize
	tc.Optimizer = nn.NewAdam(cfg.LearningRate)
	tc.ValFrac = cfg.ValFrac
	tc.Patience = cfg.Patience
	tc.Workers = cfg.Workers
	hist, err := nn.Fit(model, inputs, inputs, tc)
	if err != nil {
		return nil, hist, fmt.Errorf("autoencoder: fit: %w", err)
	}
	return &Detector{cfg: cfg, model: model}, hist, nil
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Model exposes the underlying network (read-mostly; used for weight
// persistence).
func (d *Detector) Model() *nn.Model { return d.model }

// windowSeq overwrites seq with one-feature views of the window starting
// at values[s]: seq[k] aliases values[s+k : s+k+1], so building a scoring
// window copies nothing. Layers never mutate their input, which makes the
// aliasing safe.
func windowSeq(seq nn.Seq, values []float64, s, seqLen int) {
	for k := 0; k < seqLen; k++ {
		seq[k] = values[s+k : s+k+1 : s+k+1]
	}
}

// scoreBatch is the number of windows reconstructed per batched inference
// pass (the shared chunked-inference sub-batch size).
const scoreBatch = nn.PredictBatch

// BatchScorer owns the reusable buffers for repeated batched window
// scoring: an inference workspace and zero-copy window views. Steady-state
// scoring through ScoreWindowsInto is allocation-free. Not safe for
// concurrent use; parallel scorers each own one (PointScores does this).
type BatchScorer struct {
	det  *Detector
	ws   *nn.Workspace
	seqs []nn.Seq
}

// NewBatchScorer builds a batched window scorer around the trained
// detector. An untrained detector yields a scorer whose methods return
// ErrNotTrained.
func (d *Detector) NewBatchScorer() *BatchScorer {
	if d == nil || d.model == nil {
		return &BatchScorer{det: d}
	}
	s := &BatchScorer{det: d, ws: nn.NewWorkspace(), seqs: make([]nn.Seq, scoreBatch)}
	for i := range s.seqs {
		s.seqs[i] = make(nn.Seq, d.cfg.SeqLen)
	}
	return s
}

// ScoreWindowsInto writes the reconstruction MSE of each window (all of
// the detector's SeqLen) into dst[i]. len(dst) must equal len(windows).
// Windows are reconstructed scoreBatch at a time through the batched
// forward path; in steady state the call performs no allocation.
func (s *BatchScorer) ScoreWindowsInto(dst []float64, windows [][]float64) error {
	if s.det == nil || s.det.model == nil {
		return ErrNotTrained
	}
	if len(dst) != len(windows) {
		return fmt.Errorf("%w: %d scores for %d windows", ErrBadConfig, len(dst), len(windows))
	}
	seqLen := s.det.cfg.SeqLen
	for i, w := range windows {
		if len(w) != seqLen {
			return fmt.Errorf("%w: window %d has %d values, need %d", ErrBadConfig, i, len(w), seqLen)
		}
	}
	var loss nn.MSE
	for lo := 0; lo < len(windows); lo += scoreBatch {
		hi := lo + scoreBatch
		if hi > len(windows) {
			hi = len(windows)
		}
		for i := lo; i < hi; i++ {
			windowSeq(s.seqs[i-lo], windows[i], 0, seqLen)
		}
		outs := s.det.model.PredictBatchWS(s.seqs[:hi-lo], s.ws)
		for i, out := range outs {
			dst[lo+i] = loss.Value(out, s.seqs[i])
		}
	}
	return nil
}

// ScoreLastInto writes each window's last-point anomaly score — the
// squared error between the window's final value and its reconstruction,
// the streaming criterion of StreamScorer.ScoreLast — into scores[i]. If
// recons is non-nil (same length) it receives the reconstruction of each
// window's final point, which a mitigation stage can substitute for a
// flagged raw value. Windows are reconstructed scoreBatch at a time
// through the batched forward path; in steady state the call performs no
// allocation. This is the sharded scoring service's batch path: scores
// agree with the single-window streaming path to within the batched
// kernels' summation-order tolerance (DESIGN.md §7), which is what makes
// batch-threshold crossover invisible to callers (tested).
func (s *BatchScorer) ScoreLastInto(scores, recons []float64, windows [][]float64) error {
	if s.det == nil || s.det.model == nil {
		return ErrNotTrained
	}
	if len(scores) != len(windows) {
		return fmt.Errorf("%w: %d scores for %d windows", ErrBadConfig, len(scores), len(windows))
	}
	if recons != nil && len(recons) != len(windows) {
		return fmt.Errorf("%w: %d recons for %d windows", ErrBadConfig, len(recons), len(windows))
	}
	seqLen := s.det.cfg.SeqLen
	for i, w := range windows {
		if len(w) != seqLen {
			return fmt.Errorf("%w: window %d has %d values, need %d", ErrBadConfig, i, len(w), seqLen)
		}
	}
	for lo := 0; lo < len(windows); lo += scoreBatch {
		hi := lo + scoreBatch
		if hi > len(windows) {
			hi = len(windows)
		}
		for i := lo; i < hi; i++ {
			windowSeq(s.seqs[i-lo], windows[i], 0, seqLen)
		}
		outs := s.det.model.PredictBatchWS(s.seqs[:hi-lo], s.ws)
		for i, out := range outs {
			rec := out[seqLen-1][0]
			d := windows[lo+i][seqLen-1] - rec
			scores[lo+i] = d * d
			if recons != nil {
				recons[lo+i] = rec
			}
		}
	}
	return nil
}

// ScoreWindows is ScoreWindowsInto with a freshly allocated result slice.
func (s *BatchScorer) ScoreWindows(windows [][]float64) ([]float64, error) {
	dst := make([]float64, len(windows))
	if err := s.ScoreWindowsInto(dst, windows); err != nil {
		return nil, err
	}
	return dst, nil
}

// ScoreWindows batch-scores independent SeqLen-length windows: each
// window's score is its reconstruction MSE, the paper's sequence-level
// anomaly criterion. The detector lazily builds and caches one fleet
// scorer for this entry point (a Workspace belongs to one goroutine, so
// concurrent calls serialize on it); hold your own NewBatchScorer to
// score from several goroutines at once.
func (d *Detector) ScoreWindows(windows [][]float64) ([]float64, error) {
	if d == nil || d.model == nil {
		return nil, ErrNotTrained
	}
	d.fleetMu.Lock()
	defer d.fleetMu.Unlock()
	if d.fleet == nil {
		d.fleet = d.NewBatchScorer()
	}
	return d.fleet.ScoreWindows(windows)
}

// SequenceErrors returns the reconstruction MSE of every stride-1 window
// of values, indexed by window start. Windows are scored scoreBatch at a
// time through the batched forward path with zero-copy window views, so
// the sweep allocates nothing beyond the result, the window headers and
// one scorer.
func (d *Detector) SequenceErrors(values []float64) ([]float64, error) {
	if d == nil || d.model == nil {
		return nil, ErrNotTrained
	}
	if len(values) < d.cfg.SeqLen {
		return nil, fmt.Errorf("autoencoder: build scoring sequences: %w: %d values for sequence length %d",
			series.ErrTooShort, len(values), d.cfg.SeqLen)
	}
	nWin := len(values) - d.cfg.SeqLen + 1
	windows := make([][]float64, nWin)
	for s := range windows {
		windows[s] = values[s : s+d.cfg.SeqLen : s+d.cfg.SeqLen]
	}
	out := make([]float64, nWin)
	if err := d.NewBatchScorer().ScoreWindowsInto(out, windows); err != nil {
		return nil, err
	}
	return out, nil
}

// PointScores assigns an anomaly score to every point of values: each
// overlapping window is reconstructed, reconstructions covering a point
// are averaged, and the score is the squared error between the point and
// its averaged reconstruction. This converts the paper's sequence-level
// MSE criterion into the point-level flags the mitigation stage needs
// while preserving the thresholding semantics (scores are squared
// reconstruction errors in scaled units).
func (d *Detector) PointScores(values []float64) ([]float64, error) {
	if d == nil || d.model == nil {
		return nil, ErrNotTrained
	}
	n := len(values)
	if n < d.cfg.SeqLen {
		return nil, fmt.Errorf("%w: %d values for window %d", series.ErrTooShort, n, d.cfg.SeqLen)
	}
	nWin := n - d.cfg.SeqLen + 1
	workers := d.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nWin {
		workers = nWin
	}
	// Each worker accumulates into private buffers and owns a private
	// batch scorer; its strided share of windows is reconstructed
	// scoreBatch windows per batched forward pass, so the sweep's weight
	// panels are loaded once per batch instead of once per window.
	recons := make([][]float64, workers)
	counts := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		recons[w] = make([]float64, n)
		counts[w] = make([]float64, n)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bs := d.NewBatchScorer()
			starts := make([]int, 0, scoreBatch)
			for base := w; base < nWin; base += workers * scoreBatch {
				starts = starts[:0]
				for s := base; s < nWin && len(starts) < scoreBatch; s += workers {
					windowSeq(bs.seqs[len(starts)], values, s, d.cfg.SeqLen)
					starts = append(starts, s)
				}
				outs := d.model.PredictBatchWS(bs.seqs[:len(starts)], bs.ws)
				for i, s := range starts {
					out := outs[i]
					for k := 0; k < d.cfg.SeqLen; k++ {
						recons[w][s+k] += out[k][0]
						counts[w][s+k]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	scores := make([]float64, n)
	for i := range scores {
		var recon, count float64
		for w := 0; w < workers; w++ {
			recon += recons[w][i]
			count += counts[w][i]
		}
		diff := values[i] - recon/count
		scores[i] = diff * diff
	}
	return scores, nil
}
