// Package autoencoder implements the paper's unsupervised anomaly
// detector: an LSTM autoencoder (encoder LSTM(50)→LSTM(25), decoder
// RepeatVector→LSTM(25)→LSTM(50)→Dense(1), dropout 0.2) trained to
// reconstruct normal charging sequences. Reconstruction error — mean
// squared error between a sequence and its reconstruction — is the
// anomaly score; the 98th percentile of training-set errors becomes the
// detection threshold (applied in package anomaly).
package autoencoder

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/evfed/evfed/internal/nn"
	"github.com/evfed/evfed/internal/series"
)

// Errors returned by the package.
var (
	ErrBadConfig  = errors.New("autoencoder: invalid configuration")
	ErrNotTrained = errors.New("autoencoder: detector not trained")
)

// Config parameterizes the detector. DefaultConfig matches the paper.
type Config struct {
	// SeqLen is the reconstruction window length (paper: 24).
	SeqLen int
	// EncoderUnits is the outer LSTM width (paper: 50).
	EncoderUnits int
	// Bottleneck is the inner LSTM width (paper: 25).
	Bottleneck int
	// Dropout is the dropout rate (paper: 0.2).
	Dropout float64
	// Epochs bounds training passes; early stopping applies (patience 10).
	Epochs int
	// BatchSize is the minibatch size (paper: 32).
	BatchSize int
	// LearningRate feeds Adam (paper: 1e-3).
	LearningRate float64
	// Patience is the early-stopping patience (paper: 10).
	Patience int
	// ValFrac is the validation fraction for early stopping.
	ValFrac float64
	// TrainStride is the hop between training sequences (1 = fully
	// overlapping; larger values trade fidelity for speed).
	TrainStride int
	// Seed drives initialization, shuffling and dropout.
	Seed uint64
	// Workers is the parallel gradient worker count (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the paper's hyperparameters.
func DefaultConfig() Config {
	return Config{
		SeqLen:       24,
		EncoderUnits: 50,
		Bottleneck:   25,
		Dropout:      0.2,
		Epochs:       30,
		BatchSize:    32,
		LearningRate: 0.001,
		Patience:     10,
		ValFrac:      0.1,
		TrainStride:  1,
		Seed:         1,
	}
}

func (c Config) validate() error {
	switch {
	case c.SeqLen <= 0:
		return fmt.Errorf("%w: seqLen %d", ErrBadConfig, c.SeqLen)
	case c.EncoderUnits <= 0 || c.Bottleneck <= 0:
		return fmt.Errorf("%w: units %d/%d", ErrBadConfig, c.EncoderUnits, c.Bottleneck)
	case c.Epochs <= 0 || c.BatchSize <= 0:
		return fmt.Errorf("%w: epochs %d batch %d", ErrBadConfig, c.Epochs, c.BatchSize)
	case c.LearningRate <= 0:
		return fmt.Errorf("%w: lr %v", ErrBadConfig, c.LearningRate)
	case c.TrainStride <= 0:
		return fmt.Errorf("%w: stride %d", ErrBadConfig, c.TrainStride)
	}
	return nil
}

// Detector is a trained LSTM-autoencoder anomaly scorer. Values fed to the
// detector must be scaled the same way as the training data (the pipeline
// uses per-client MinMax scaling to [0, 1]).
type Detector struct {
	cfg   Config
	model *nn.Model
}

// Train fits the autoencoder on normal (non-anomalous) values, as the
// paper prescribes: the model learns baseline reconstruction patterns and
// later scores deviations from them.
func Train(values []float64, cfg Config) (*Detector, nn.History, error) {
	if err := cfg.validate(); err != nil {
		return nil, nn.History{}, err
	}
	seqs, err := series.MakeSequences(values, cfg.SeqLen, cfg.TrainStride)
	if err != nil {
		return nil, nn.History{}, fmt.Errorf("autoencoder: build training sequences: %w", err)
	}
	model, err := nn.Build(nn.AutoencoderSpec(cfg.SeqLen, cfg.EncoderUnits, cfg.Bottleneck, cfg.Dropout), cfg.Seed)
	if err != nil {
		return nil, nn.History{}, fmt.Errorf("autoencoder: build model: %w", err)
	}
	inputs := make([]nn.Seq, len(seqs))
	for i, s := range seqs {
		inputs[i] = s
	}
	tc := nn.DefaultTrainConfig(cfg.Epochs, cfg.Seed+1)
	tc.BatchSize = cfg.BatchSize
	tc.Optimizer = nn.NewAdam(cfg.LearningRate)
	tc.ValFrac = cfg.ValFrac
	tc.Patience = cfg.Patience
	tc.Workers = cfg.Workers
	hist, err := nn.Fit(model, inputs, inputs, tc)
	if err != nil {
		return nil, hist, fmt.Errorf("autoencoder: fit: %w", err)
	}
	return &Detector{cfg: cfg, model: model}, hist, nil
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Model exposes the underlying network (read-mostly; used for weight
// persistence).
func (d *Detector) Model() *nn.Model { return d.model }

// windowSeq overwrites seq with one-feature views of the window starting
// at values[s]: seq[k] aliases values[s+k : s+k+1], so building a scoring
// window copies nothing. Layers never mutate their input, which makes the
// aliasing safe.
func windowSeq(seq nn.Seq, values []float64, s, seqLen int) {
	for k := 0; k < seqLen; k++ {
		seq[k] = values[s+k : s+k+1 : s+k+1]
	}
}

// SequenceErrors returns the reconstruction MSE of every stride-1 window
// of values, indexed by window start. Scoring reuses one workspace and
// zero-copy window views, so the whole sweep performs no per-window
// allocation.
func (d *Detector) SequenceErrors(values []float64) ([]float64, error) {
	if d == nil || d.model == nil {
		return nil, ErrNotTrained
	}
	if len(values) < d.cfg.SeqLen {
		return nil, fmt.Errorf("autoencoder: build scoring sequences: %w: %d values for sequence length %d",
			series.ErrTooShort, len(values), d.cfg.SeqLen)
	}
	var loss nn.MSE
	nWin := len(values) - d.cfg.SeqLen + 1
	out := make([]float64, nWin)
	ws := nn.NewWorkspace()
	seq := make(nn.Seq, d.cfg.SeqLen)
	for s := 0; s < nWin; s++ {
		windowSeq(seq, values, s, d.cfg.SeqLen)
		out[s] = loss.Value(d.model.PredictWS(seq, ws), seq)
	}
	return out, nil
}

// PointScores assigns an anomaly score to every point of values: each
// overlapping window is reconstructed, reconstructions covering a point
// are averaged, and the score is the squared error between the point and
// its averaged reconstruction. This converts the paper's sequence-level
// MSE criterion into the point-level flags the mitigation stage needs
// while preserving the thresholding semantics (scores are squared
// reconstruction errors in scaled units).
func (d *Detector) PointScores(values []float64) ([]float64, error) {
	if d == nil || d.model == nil {
		return nil, ErrNotTrained
	}
	n := len(values)
	if n < d.cfg.SeqLen {
		return nil, fmt.Errorf("%w: %d values for window %d", series.ErrTooShort, n, d.cfg.SeqLen)
	}
	nWin := n - d.cfg.SeqLen + 1
	workers := d.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nWin {
		workers = nWin
	}
	// Each worker accumulates into private buffers and owns a private
	// workspace; the forward pass is re-entrant, so windows can be
	// reconstructed concurrently with no per-window allocation.
	recons := make([][]float64, workers)
	counts := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		recons[w] = make([]float64, n)
		counts[w] = make([]float64, n)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := nn.NewWorkspace()
			seq := make(nn.Seq, d.cfg.SeqLen)
			for s := w; s < nWin; s += workers {
				windowSeq(seq, values, s, d.cfg.SeqLen)
				out := d.model.PredictWS(seq, ws)
				for k := 0; k < d.cfg.SeqLen; k++ {
					recons[w][s+k] += out[k][0]
					counts[w][s+k]++
				}
			}
		}(w)
	}
	wg.Wait()
	scores := make([]float64, n)
	for i := range scores {
		var recon, count float64
		for w := 0; w < workers; w++ {
			recon += recons[w][i]
			count += counts[w][i]
		}
		diff := values[i] - recon/count
		scores[i] = diff * diff
	}
	return scores, nil
}
