package autoencoder

import (
	"math"
	"testing"

	"github.com/evfed/evfed/internal/anomaly"
)

// TestStreamScorerMatchesAdapter: the workspace-backed scorer must produce
// bit-identical scores to the stateless Adapter.
func TestStreamScorerMatchesAdapter(t *testing.T) {
	det, _, err := Train(dailySine(200, 0.02, 61), smallConfig(62))
	if err != nil {
		t.Fatal(err)
	}
	a := Adapter{Detector: det}
	s := det.NewStreamScorer()
	if s.WindowLen() != a.WindowLen() {
		t.Fatalf("window len %d vs %d", s.WindowLen(), a.WindowLen())
	}
	live := dailySine(3*det.Config().SeqLen, 0.02, 63)
	for start := 0; start+det.Config().SeqLen <= len(live); start++ {
		win := live[start : start+det.Config().SeqLen]
		want, err := a.ScoreLast(win)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.ScoreLast(win)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("window %d: %v vs %v", start, got, want)
		}
	}
	if _, err := s.ScoreLast(make([]float64, 3)); err == nil {
		t.Fatal("wrong window size should error")
	}
}

// TestStreamingDetectionZeroAlloc is the tentpole's streaming guard: a
// full Stream.Push through the trained autoencoder (ring buffer + window
// reconstruction) allocates nothing once warm.
func TestStreamingDetectionZeroAlloc(t *testing.T) {
	det, _, err := Train(dailySine(200, 0.02, 64), smallConfig(65))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := anomaly.NewStream(det.NewStreamScorer(), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	live := dailySine(3*det.Config().SeqLen, 0.02, 66)
	for _, v := range live {
		if _, err := stream.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	n := testing.AllocsPerRun(50, func() {
		if _, err := stream.Push(live[i%len(live)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if n != 0 {
		t.Fatalf("streaming Push allocates %v times in steady state", n)
	}
}

// BenchmarkDetectorStreamPush measures the full per-point cost of live
// detection with the paper's window (24) and a trained reduced detector.
func BenchmarkDetectorStreamPush(b *testing.B) {
	det, _, err := Train(dailySine(200, 0.02, 67), smallConfig(68))
	if err != nil {
		b.Fatal(err)
	}
	stream, err := anomaly.NewStream(det.NewStreamScorer(), math.Inf(1))
	if err != nil {
		b.Fatal(err)
	}
	live := dailySine(400, 0.02, 69)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Push(live[i%len(live)]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNewStreamScorerUntrained(t *testing.T) {
	var d *Detector
	s := d.NewStreamScorer()
	if s.WindowLen() != 0 {
		t.Fatalf("nil detector window len %d", s.WindowLen())
	}
	if _, err := s.ScoreLast(make([]float64, 1)); err == nil {
		t.Fatal("nil detector should error")
	}
}
