package autoencoder

import (
	"errors"
	"math"
	"testing"

	"github.com/evfed/evfed/internal/nn"
	"github.com/evfed/evfed/internal/rng"
)

// tinyDetector trains a small, fast detector for scoring tests.
func tinyDetector(t testing.TB) (*Detector, []float64) {
	t.Helper()
	r := rng.New(77)
	values := make([]float64, 300)
	for i := range values {
		values[i] = 0.5 + 0.3*math.Sin(2*math.Pi*float64(i)/24) + r.Normal(0, 0.01)
	}
	cfg := DefaultConfig()
	cfg.SeqLen = 12
	cfg.EncoderUnits = 8
	cfg.Bottleneck = 4
	cfg.Epochs = 2
	cfg.ValFrac = 0
	cfg.TrainStride = 3
	cfg.Workers = 1
	det, _, err := Train(values, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return det, values
}

// TestScoreWindowsMatchesPerSample pins batched window scoring to the
// per-sample reference: SequenceErrors (batched internally) and
// ScoreWindows must agree with window-at-a-time PredictWS scoring within
// the batched path's tolerance.
func TestScoreWindowsMatchesPerSample(t *testing.T) {
	det, values := tinyDetector(t)
	seqLen := det.Config().SeqLen

	errsBatched, err := det.SequenceErrors(values)
	if err != nil {
		t.Fatal(err)
	}
	nWin := len(values) - seqLen + 1
	if len(errsBatched) != nWin {
		t.Fatalf("%d errors for %d windows", len(errsBatched), nWin)
	}

	windows := make([][]float64, nWin)
	for s := 0; s < nWin; s++ {
		windows[s] = values[s : s+seqLen]
	}
	scores, err := det.ScoreWindows(windows)
	if err != nil {
		t.Fatal(err)
	}

	var loss nn.MSE
	ws := nn.NewWorkspace()
	seq := make(nn.Seq, seqLen)
	for s := 0; s < nWin; s++ {
		windowSeq(seq, values, s, seqLen)
		want := loss.Value(det.Model().PredictWS(seq, ws), seq)
		if math.Abs(errsBatched[s]-want) > 1e-9 {
			t.Fatalf("SequenceErrors[%d] = %v, per-sample %v", s, errsBatched[s], want)
		}
		if math.Abs(scores[s]-want) > 1e-9 {
			t.Fatalf("ScoreWindows[%d] = %v, per-sample %v", s, scores[s], want)
		}
	}
}

func TestScoreWindowsValidation(t *testing.T) {
	det, values := tinyDetector(t)
	if _, err := det.ScoreWindows([][]float64{values[:5]}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig for short window, got %v", err)
	}
	var none *Detector
	if _, err := none.ScoreWindows([][]float64{values[:12]}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("want ErrNotTrained, got %v", err)
	}
	bs := none.NewBatchScorer()
	if err := bs.ScoreWindowsInto(nil, nil); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("want ErrNotTrained from scorer, got %v", err)
	}
	trained := det.NewBatchScorer()
	if err := trained.ScoreWindowsInto(make([]float64, 1), nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig for length mismatch, got %v", err)
	}
	if scores, err := det.ScoreWindows(nil); err != nil || len(scores) != 0 {
		t.Fatalf("empty batch: %v, %v", scores, err)
	}
}

// TestBatchScorerSteadyStateAllocs is the alloc guard for the batched
// scoring hot path: a warmed BatchScorer scores repeatedly without
// allocating.
func TestBatchScorerSteadyStateAllocs(t *testing.T) {
	det, values := tinyDetector(t)
	seqLen := det.Config().SeqLen
	windows := make([][]float64, 64)
	for i := range windows {
		windows[i] = values[i : i+seqLen]
	}
	dst := make([]float64, len(windows))
	bs := det.NewBatchScorer()
	for i := 0; i < 3; i++ {
		if err := bs.ScoreWindowsInto(dst, windows); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := bs.ScoreWindowsInto(dst, windows); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batched scoring allocated %v times per run", allocs)
	}
}

// BenchmarkDetectorScoreWindows measures fleet-style batched window
// scoring through the detector (64 windows per call, batch 32 inside).
func BenchmarkDetectorScoreWindows(b *testing.B) {
	det, values := tinyDetector(b)
	seqLen := det.Config().SeqLen
	windows := make([][]float64, 64)
	for i := range windows {
		windows[i] = values[i : i+seqLen]
	}
	dst := make([]float64, len(windows))
	bs := det.NewBatchScorer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bs.ScoreWindowsInto(dst, windows); err != nil {
			b.Fatal(err)
		}
	}
}
