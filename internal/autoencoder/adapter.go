package autoencoder

import (
	"fmt"

	"github.com/evfed/evfed/internal/nn"
)

// Adapter adapts a trained Detector to the anomaly.Scorer interface, so
// the autoencoder plugs into the same filter pipeline as the statistical
// baselines.
type Adapter struct {
	// Detector is the trained autoencoder detector.
	Detector *Detector
}

// Name implements anomaly.Scorer.
func (a Adapter) Name() string {
	if a.Detector == nil {
		return "lstm-autoencoder(untrained)"
	}
	c := a.Detector.Config()
	return fmt.Sprintf("lstm-autoencoder(%d→%d)", c.EncoderUnits, c.Bottleneck)
}

// Scores implements anomaly.Scorer.
func (a Adapter) Scores(values []float64) ([]float64, error) {
	return a.Detector.PointScores(values)
}

// ScoreWindows implements anomaly.WindowScorer: each window is scored by
// its reconstruction MSE through the detector's batched inference path.
// The detector reuses one cached fleet scorer under a mutex, so repeated
// calls are allocation-amortized but serialize; hold a
// Detector.NewBatchScorer per goroutine to score in parallel.
func (a Adapter) ScoreWindows(windows [][]float64) ([]float64, error) {
	if a.Detector == nil {
		return nil, ErrNotTrained
	}
	return a.Detector.ScoreWindows(windows)
}

// WindowLen implements anomaly.LastPointScorer.
func (a Adapter) WindowLen() int {
	if a.Detector == nil {
		return 0
	}
	return a.Detector.Config().SeqLen
}

// ScoreLast implements anomaly.LastPointScorer: the window ending at the
// newest point is reconstructed and the squared error of that point is
// its score (the streaming analogue of PointScores, which additionally
// averages over future windows a live detector does not have yet).
//
// Adapter is stateless, so every call allocates its intermediates; a
// long-lived stream should use Detector.NewStreamScorer instead.
func (a Adapter) ScoreLast(window []float64) (float64, error) {
	if a.Detector == nil || a.Detector.model == nil {
		return 0, ErrNotTrained
	}
	return a.Detector.NewStreamScorer().ScoreLast(window)
}

// StreamScorer is the reusable-buffer form of Adapter for online
// detection: it owns an inference workspace and a window view, so scoring
// a streamed point is allocation-free in steady state. Not safe for
// concurrent use (anomaly.Stream is single-goroutine by contract).
type StreamScorer struct {
	det *Detector
	ws  *nn.Workspace
	seq nn.Seq
}

// NewStreamScorer builds an allocation-free anomaly.LastPointScorer
// around the trained detector. An untrained detector yields a scorer
// whose ScoreLast returns ErrNotTrained (mirroring Adapter).
func (d *Detector) NewStreamScorer() *StreamScorer {
	if d == nil || d.model == nil {
		return &StreamScorer{det: d}
	}
	return &StreamScorer{
		det: d,
		ws:  nn.NewWorkspace(),
		seq: make(nn.Seq, d.cfg.SeqLen),
	}
}

// WindowLen implements anomaly.LastPointScorer.
func (s *StreamScorer) WindowLen() int {
	if s.det == nil {
		return 0
	}
	return s.det.cfg.SeqLen
}

// ScoreLast implements anomaly.LastPointScorer.
func (s *StreamScorer) ScoreLast(window []float64) (float64, error) {
	score, _, err := s.ScoreLastRecon(window)
	return score, err
}

// ScoreLastRecon scores the window's final point and also returns that
// point's reconstruction, the value an online mitigation stage
// substitutes for a flagged raw reading (the streaming analogue of the
// offline filter's interpolation).
func (s *StreamScorer) ScoreLastRecon(window []float64) (score, recon float64, err error) {
	if s.det == nil || s.det.model == nil {
		return 0, 0, ErrNotTrained
	}
	seqLen := s.det.cfg.SeqLen
	if len(window) != seqLen {
		return 0, 0, fmt.Errorf("%w: window %d, need %d", ErrBadConfig, len(window), seqLen)
	}
	windowSeq(s.seq, window, 0, seqLen)
	out := s.det.model.PredictWS(s.seq, s.ws)
	recon = out[seqLen-1][0]
	d := window[seqLen-1] - recon
	return d * d, recon, nil
}
