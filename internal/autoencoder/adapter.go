package autoencoder

import "fmt"

// Adapter adapts a trained Detector to the anomaly.Scorer interface, so
// the autoencoder plugs into the same filter pipeline as the statistical
// baselines.
type Adapter struct {
	// Detector is the trained autoencoder detector.
	Detector *Detector
}

// Name implements anomaly.Scorer.
func (a Adapter) Name() string {
	if a.Detector == nil {
		return "lstm-autoencoder(untrained)"
	}
	c := a.Detector.Config()
	return fmt.Sprintf("lstm-autoencoder(%d→%d)", c.EncoderUnits, c.Bottleneck)
}

// Scores implements anomaly.Scorer.
func (a Adapter) Scores(values []float64) ([]float64, error) {
	return a.Detector.PointScores(values)
}

// WindowLen implements anomaly.LastPointScorer.
func (a Adapter) WindowLen() int {
	if a.Detector == nil {
		return 0
	}
	return a.Detector.Config().SeqLen
}

// ScoreLast implements anomaly.LastPointScorer: the window ending at the
// newest point is reconstructed and the squared error of that point is
// its score (the streaming analogue of PointScores, which additionally
// averages over future windows a live detector does not have yet).
func (a Adapter) ScoreLast(window []float64) (float64, error) {
	if a.Detector == nil || a.Detector.model == nil {
		return 0, ErrNotTrained
	}
	seqLen := a.Detector.cfg.SeqLen
	if len(window) != seqLen {
		return 0, fmt.Errorf("%w: window %d, need %d", ErrBadConfig, len(window), seqLen)
	}
	seq := make([][]float64, seqLen)
	for k, v := range window {
		seq[k] = []float64{v}
	}
	out := a.Detector.model.Predict(seq)
	d := window[seqLen-1] - out[seqLen-1][0]
	return d * d, nil
}
