package autoencoder

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/evfed/evfed/internal/nn"
)

// detectorFile is the single gob frame holding everything needed to
// reconstruct a trained detector. (One frame, not a header followed by a
// second stream: gob decoders read ahead, so two consecutive streams on
// one reader would corrupt each other.) Threshold is optional — files
// written before calibration persistence decode it as zero.
type detectorFile struct {
	Config    Config
	Weights   []float64
	Threshold float64
}

// FromWeights rebuilds a trained detector from its configuration and a
// flat weight vector — the hot-reload primitive: a serving deployment
// receives freshly federated weights and constructs a complete
// copy-on-write detector around them without touching the one currently
// scoring traffic. The weights are copied, so the caller may reuse its
// buffer.
func FromWeights(cfg Config, weights []float64) (*Detector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	model, err := nn.Build(nn.AutoencoderSpec(
		cfg.SeqLen, cfg.EncoderUnits, cfg.Bottleneck, cfg.Dropout,
	), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("autoencoder: rebuild model: %w", err)
	}
	w := make([]float64, len(weights))
	copy(w, weights)
	if err := model.SetWeightsVector(w); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, model: model}, nil
}

// Save persists the detector (configuration + trained weights) so a
// station can reload it without retraining.
func (d *Detector) Save(w io.Writer) error {
	return d.SaveCalibrated(w, 0)
}

// SaveCalibrated persists the detector together with its calibrated
// detection threshold, so a scoring service can load both in one file
// (evfeddetect -save-model writes this form).
func (d *Detector) SaveCalibrated(w io.Writer, threshold float64) error {
	if d == nil || d.model == nil {
		return ErrNotTrained
	}
	f := detectorFile{Config: d.cfg, Weights: d.model.WeightsVector(), Threshold: threshold}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("autoencoder: encode detector: %w", err)
	}
	return nil
}

// Load restores a detector previously written by Save.
func Load(r io.Reader) (*Detector, error) {
	d, _, err := LoadCalibrated(r)
	return d, err
}

// LoadCalibrated restores a detector plus its persisted detection
// threshold (zero for files written by plain Save or by builds predating
// calibration persistence).
func LoadCalibrated(r io.Reader) (*Detector, float64, error) {
	var f detectorFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, 0, fmt.Errorf("autoencoder: decode detector: %w", err)
	}
	d, err := FromWeights(f.Config, f.Weights)
	if err != nil {
		return nil, 0, err
	}
	return d, f.Threshold, nil
}
