package autoencoder

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/evfed/evfed/internal/nn"
)

// detectorFile is the single gob frame holding everything needed to
// reconstruct a trained detector. (One frame, not a header followed by a
// second stream: gob decoders read ahead, so two consecutive streams on
// one reader would corrupt each other.)
type detectorFile struct {
	Config  Config
	Weights []float64
}

// Save persists the detector (configuration + trained weights) so a
// station can reload it without retraining.
func (d *Detector) Save(w io.Writer) error {
	if d == nil || d.model == nil {
		return ErrNotTrained
	}
	f := detectorFile{Config: d.cfg, Weights: d.model.WeightsVector()}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("autoencoder: encode detector: %w", err)
	}
	return nil
}

// Load restores a detector previously written by Save.
func Load(r io.Reader) (*Detector, error) {
	var f detectorFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("autoencoder: decode detector: %w", err)
	}
	if err := f.Config.validate(); err != nil {
		return nil, err
	}
	model, err := nn.Build(nn.AutoencoderSpec(
		f.Config.SeqLen, f.Config.EncoderUnits, f.Config.Bottleneck, f.Config.Dropout,
	), f.Config.Seed)
	if err != nil {
		return nil, fmt.Errorf("autoencoder: rebuild model: %w", err)
	}
	if err := model.SetWeightsVector(f.Weights); err != nil {
		return nil, err
	}
	return &Detector{cfg: f.Config, model: model}, nil
}
