package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/evfed/evfed/internal/series"
)

// WriteCSV serializes a series as `timestamp,value` rows with an RFC 3339
// timestamp column and a header, the interchange format of the cmd tools.
func WriteCSV(w io.Writer, s *series.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "volume_kwh"}); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	for i, v := range s.Values {
		rec := []string{
			s.TimeAt(i).Format(time.RFC3339),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series previously written by WriteCSV. The sampling
// step is inferred from the first two timestamps (1 hour for a single-row
// file).
func ReadCSV(r io.Reader) (*series.Series, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("dataset: csv needs a header and at least one row, got %d records", len(records))
	}
	rows := records[1:]
	vals := make([]float64, len(rows))
	times := make([]time.Time, len(rows))
	for i, rec := range rows {
		if len(rec) != 2 {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, want 2", i+1, len(rec))
		}
		ts, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d timestamp: %w", i+1, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d value: %w", i+1, err)
		}
		times[i] = ts
		vals[i] = v
	}
	step := time.Hour
	if len(times) >= 2 {
		step = times[1].Sub(times[0])
		if step <= 0 {
			return nil, fmt.Errorf("dataset: non-increasing timestamps in csv (step %v)", step)
		}
	}
	return series.New(times[0], step, vals), nil
}
