// Package dataset synthesizes the Shenzhen-like EV charging dataset the
// paper evaluates on.
//
// The original study uses a proprietary mobile-platform collection of 331
// traffic zones sampled every 5 minutes from September 2022 to February
// 2023 and aggregated to 1-hour region-level volumes; zones '102', '105'
// and '108' become federated Clients 1–3 with 4,344 hourly timestamps
// each. That dataset is not public, so this package generates a synthetic
// equivalent that preserves the structural properties the experiments
// depend on:
//
//   - strong daily periodicity with workday commuter peaks (learnable by a
//     24-step LSTM look-back);
//   - weekly structure and slow seasonal drift across the six-month window;
//   - autoregressive short-term noise;
//   - spatial heterogeneity: each zone has its own base load, peak shape
//     and noise level, so a single centralized model must compromise
//     (paper §III-E);
//   - zone-108-style naturally occurring demand spikes that resemble
//     attack signatures, which the paper holds responsible for that zone's
//     poor detection recall (Table II).
//
// Generation is deterministic for a given (zone, seed) pair. Data can also
// be produced at 5-minute resolution and aggregated through
// series.Resample, mirroring the paper's collection pipeline.
package dataset

import (
	"fmt"
	"math"
	"time"

	"github.com/evfed/evfed/internal/rng"
	"github.com/evfed/evfed/internal/series"
)

// StudyStart is the first timestamp of the paper's collection window.
var StudyStart = time.Date(2022, time.September, 1, 0, 0, 0, 0, time.UTC)

// StudyHours is the number of hourly samples per zone in the paper (4,344
// ≈ September 2022 through February 2023).
const StudyHours = 4344

// TotalZones is the number of traffic zones in the full Shenzhen dataset.
const TotalZones = 331

// ZoneProfile parameterizes one traffic zone's charging behaviour. Units
// are kWh of hourly charging volume.
type ZoneProfile struct {
	// Zone is the traffic-zone identifier (e.g. "102").
	Zone string
	// Base is the always-present load floor.
	Base float64
	// DailyAmp scales the smooth daily cycle.
	DailyAmp float64
	// MorningPeak and EveningPeak are commuter-peak amplitudes.
	MorningPeak, EveningPeak float64
	// MorningHour and EveningHour locate the two demand peaks within the
	// day. Zones differ materially here (residential evening charging,
	// business-district midday charging, depot overnight charging), which
	// is what forces the centralized model into a compromise.
	MorningHour, EveningHour float64
	// PeakWidth is the Gaussian width (hours) of the commuter peaks.
	PeakWidth float64
	// DailyPhase shifts the smooth daily cycle's trough (hours).
	DailyPhase float64
	// PhaseJitterStd drives a mean-reverting day-to-day random walk of the
	// peak hours (hours). Real charging peaks drift with weather, events
	// and traffic; a model serving one zone tracks that zone's drift, while
	// a centralized model must average over every zone's — a second source
	// of the §III-E compromise effect.
	PhaseJitterStd float64
	// WeekendFactor scales weekend demand relative to weekdays.
	WeekendFactor float64
	// SeasonalTrend is the total fractional drift across the horizon
	// (e.g. 0.15 = +15% by the end of the window).
	SeasonalTrend float64
	// NoiseStd is the standard deviation of the AR(1) noise term.
	NoiseStd float64
	// AR is the autoregressive coefficient of the noise process.
	AR float64
	// SpikeRate is the per-hour probability of a naturally occurring
	// demand spike (fleet arrivals, event traffic).
	SpikeRate float64
	// SpikeMag is the multiplicative magnitude range of natural spikes:
	// a spike multiplies demand by Uniform(1+SpikeMag/2, 1+SpikeMag).
	SpikeMag float64
	// WeatherSensitivity couples demand to the synthetic temperature
	// anomaly (hot/cold days increase charging).
	WeatherSensitivity float64
}

// Profile102, Profile105 and Profile108 are the calibrated profiles for
// the three zones the paper evaluates (Clients 1, 2, 3). Zone 108 carries
// markedly more natural spike activity and noise, reproducing the paper's
// observation that its patterns are hard to distinguish from attacks.
func Profile102() ZoneProfile {
	// Residential commuter zone: morning departure bump, strong evening
	// home-charging peak, quiet weekends.
	return ZoneProfile{
		Zone: "102", Base: 22, DailyAmp: 14,
		MorningPeak: 10, EveningPeak: 16,
		MorningHour: 8.5, EveningHour: 19, PeakWidth: 2.2, DailyPhase: 4,
		PhaseJitterStd: 0,
		WeekendFactor:  0.82, SeasonalTrend: 0.12,
		NoiseStd: 2.2, AR: 0.55,
		SpikeRate: 0.004, SpikeMag: 0.8,
		WeatherSensitivity: 0.06,
	}
}

// Profile105 returns the calibrated profile for traffic zone 105.
func Profile105() ZoneProfile {
	// Business/retail district: midday-centred demand, busier weekends.
	return ZoneProfile{
		Zone: "105", Base: 30, DailyAmp: 10,
		MorningPeak: 14, EveningPeak: 9,
		MorningHour: 11, EveningHour: 15, PeakWidth: 1.8, DailyPhase: 6,
		PhaseJitterStd: 0,
		WeekendFactor:  1.15, SeasonalTrend: 0.08,
		NoiseStd: 2.0, AR: 0.45,
		SpikeRate: 0.003, SpikeMag: 0.7,
		WeatherSensitivity: 0.05,
	}
}

// Profile108 returns the calibrated profile for traffic zone 108, the
// spiky, hard-to-detect zone.
func Profile108() ZoneProfile {
	// Logistics/fleet-depot zone: overnight depot charging and late-night
	// peaks, heavy natural spike activity (the hard-to-detect zone).
	return ZoneProfile{
		Zone: "108", Base: 16, DailyAmp: 9,
		MorningPeak: 7, EveningPeak: 12,
		MorningHour: 2, EveningHour: 22.5, PeakWidth: 3.0, DailyPhase: 14,
		PhaseJitterStd: 0,
		WeekendFactor:  1.0, SeasonalTrend: 0.18,
		NoiseStd: 3.2, AR: 0.65,
		SpikeRate: 0.02, SpikeMag: 2.0,
		WeatherSensitivity: 0.09,
	}
}

// ProfileForZone returns a deterministic profile for any zone id in
// [1, TotalZones]. The three study zones use their calibrated profiles;
// other zones get procedurally generated parameters, so the full 331-zone
// dataset can be synthesized.
func ProfileForZone(zone int) (ZoneProfile, error) {
	if zone < 1 || zone > TotalZones {
		return ZoneProfile{}, fmt.Errorf("dataset: zone %d outside [1, %d]", zone, TotalZones)
	}
	switch zone {
	case 102:
		return Profile102(), nil
	case 105:
		return Profile105(), nil
	case 108:
		return Profile108(), nil
	}
	r := rng.New(uint64(zone) * 0x9e3779b97f4a7c15)
	return ZoneProfile{
		Zone: fmt.Sprintf("%d", zone),
		Base: r.Range(10, 40), DailyAmp: r.Range(6, 18),
		MorningPeak: r.Range(4, 15), EveningPeak: r.Range(4, 18),
		MorningHour: r.Range(2, 12), EveningHour: r.Range(13, 23),
		PeakWidth: r.Range(1.5, 3.5), DailyPhase: r.Range(0, 24),
		PhaseJitterStd: r.Range(0.3, 1.5),
		WeekendFactor:  r.Range(0.75, 1.2),
		SeasonalTrend:  r.Range(0.02, 0.2),
		NoiseStd:       r.Range(1.5, 3.5), AR: r.Range(0.3, 0.7),
		SpikeRate: r.Range(0.001, 0.02), SpikeMag: r.Range(0.5, 2),
		WeatherSensitivity: r.Range(0.03, 0.1),
	}, nil
}

// Weather holds the synthetic meteorological covariates the paper collected
// as context (not fed into the forecasting models, matching §II-A).
type Weather struct {
	// TempC is the air temperature in Celsius.
	TempC []float64
	// RainMM is hourly rainfall in millimetres.
	RainMM []float64
}

// Config controls generation.
type Config struct {
	// Profile describes the zone.
	Profile ZoneProfile
	// Hours is the number of hourly samples (StudyHours for the paper).
	Hours int
	// Seed makes generation reproducible.
	Seed uint64
}

// Result bundles a generated zone dataset.
type Result struct {
	// Series is the hourly charging-volume series (kWh).
	Series *series.Series
	// Weather carries the contextual covariates.
	Weather Weather
	// NaturalSpikes marks hours where a naturally occurring (non-attack)
	// demand spike was injected.
	NaturalSpikes []bool
}

// Generate synthesizes one zone's hourly dataset.
func Generate(cfg Config) (*Result, error) {
	if cfg.Hours <= 0 {
		return nil, fmt.Errorf("dataset: hours must be positive, got %d", cfg.Hours)
	}
	p := cfg.Profile
	r := rng.New(cfg.Seed ^ hashZone(p.Zone))
	wr := r.Split()
	vals := make([]float64, cfg.Hours)
	spikes := make([]bool, cfg.Hours)
	temp := make([]float64, cfg.Hours)
	rain := make([]float64, cfg.Hours)

	noise := 0.0
	phase := 0.0
	for t := 0; t < cfg.Hours; t++ {
		ts := StudyStart.Add(time.Duration(t) * time.Hour)
		hour := float64(ts.Hour())
		dayFrac := float64(t) / float64(cfg.Hours)

		// Daily mean-reverting drift of the peak hours.
		if t%24 == 0 && p.PhaseJitterStd > 0 {
			phase = 0.9*phase + r.Normal(0, p.PhaseJitterStd)
		}

		// Smooth daily cycle with a zone-specific trough location.
		daily := 0.5 * (1 - math.Cos(2*math.Pi*(hour-p.DailyPhase-phase)/24))
		// Zone-specific demand peaks (wrapped so a 23:30 peak bleeds into
		// the next morning correctly).
		morning := gaussWrapped(hour, p.MorningHour+phase, p.PeakWidth)
		evening := gaussWrapped(hour, p.EveningHour+phase, p.PeakWidth)

		v := p.Base + p.DailyAmp*daily + p.MorningPeak*morning + p.EveningPeak*evening

		// Weekly structure.
		if wd := ts.Weekday(); wd == time.Saturday || wd == time.Sunday {
			v *= p.WeekendFactor
		}
		// Seasonal drift (EV adoption growth + winter heating demand).
		v *= 1 + p.SeasonalTrend*dayFrac

		// Synthetic Shenzhen weather: warm September cooling into winter.
		dayOfYear := float64(ts.YearDay())
		baseTemp := 22 - 12*math.Sin(2*math.Pi*(dayOfYear-250)/365)
		temp[t] = baseTemp + wr.Normal(0, 2) + 4*math.Sin(2*math.Pi*(hour-14)/24)
		if wr.Bernoulli(0.06) {
			rain[t] = wr.Exponential(0.5)
		}
		// Hot/cold days increase charging (AC / battery conditioning).
		tempAnomaly := math.Abs(temp[t]-20) / 10
		v *= 1 + p.WeatherSensitivity*tempAnomaly

		// AR(1) noise.
		noise = p.AR*noise + r.Normal(0, p.NoiseStd)
		v += noise

		// Natural demand spikes (zone 108's defining feature).
		if r.Bernoulli(p.SpikeRate) {
			v *= 1 + p.SpikeMag/2 + r.Float64()*p.SpikeMag/2
			spikes[t] = true
		}
		if v < 0 {
			v = 0
		}
		vals[t] = v
	}
	return &Result{
		Series:        series.New(StudyStart, time.Hour, vals),
		Weather:       Weather{TempC: temp, RainMM: rain},
		NaturalSpikes: spikes,
	}, nil
}

// GenerateFiveMinute synthesizes the raw 5-minute collection stream for a
// zone and returns both the raw stream and its 1-hour aggregation,
// mirroring the paper's pipeline. The hourly aggregate has the same
// structural properties as Generate's output.
func GenerateFiveMinute(cfg Config) (raw, hourly *series.Series, err error) {
	res, err := Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	r := rng.New(cfg.Seed ^ hashZone(cfg.Profile.Zone) ^ 0xf1fe)
	vals := make([]float64, res.Series.Len()*12)
	for t, hv := range res.Series.Values {
		for k := 0; k < 12; k++ {
			// Within-hour jitter around the hourly mean.
			vals[t*12+k] = math.Max(0, hv*(1+r.Normal(0, 0.05)))
		}
	}
	raw = series.New(StudyStart, 5*time.Minute, vals)
	hourly, err = raw.Resample(12)
	if err != nil {
		return nil, nil, err
	}
	return raw, hourly, nil
}

// StudyClients generates the paper's three federated clients (zones 102,
// 105, 108) with StudyHours samples each.
func StudyClients(seed uint64) ([]*Result, error) {
	profiles := []ZoneProfile{Profile102(), Profile105(), Profile108()}
	out := make([]*Result, len(profiles))
	for i, p := range profiles {
		res, err := Generate(Config{Profile: p, Hours: StudyHours, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("dataset: client %d (%s): %w", i+1, p.Zone, err)
		}
		out[i] = res
	}
	return out, nil
}

// gaussWrapped is a Gaussian bump on the 24-hour circle.
func gaussWrapped(hour, mu, sigma float64) float64 {
	d := math.Mod(hour-mu+36, 24) - 12
	d /= sigma
	return math.Exp(-0.5 * d * d)
}

func hashZone(zone string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(zone); i++ {
		h ^= uint64(zone[i])
		h *= 1099511628211
	}
	return h
}
