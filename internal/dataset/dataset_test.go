package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Profile: Profile102(), Hours: 500, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series.Values {
		if a.Series.Values[i] != b.Series.Values[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	res, err := Generate(Config{Profile: Profile105(), Hours: StudyHours, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series.Len() != StudyHours {
		t.Fatalf("length %d", res.Series.Len())
	}
	if !res.Series.Start.Equal(StudyStart) {
		t.Fatalf("start %v", res.Series.Start)
	}
	if res.Series.Step != time.Hour {
		t.Fatalf("step %v", res.Series.Step)
	}
	if len(res.Weather.TempC) != StudyHours || len(res.Weather.RainMM) != StudyHours {
		t.Fatal("weather length mismatch")
	}
	for i, v := range res.Series.Values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("bad value %v at %d", v, i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Profile: Profile102(), Hours: 0}); err == nil {
		t.Fatal("zero hours should error")
	}
}

// Daily periodicity: demand at 18:00 must systematically exceed demand at
// 04:00 for the commuter-peak profiles.
func TestDailyPattern(t *testing.T) {
	res, err := Generate(Config{Profile: Profile102(), Hours: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var eve, night float64
	var nEve, nNight int
	for i, v := range res.Series.Values {
		switch res.Series.TimeAt(i).Hour() {
		case 18:
			eve += v
			nEve++
		case 4:
			night += v
			nNight++
		}
	}
	if eve/float64(nEve) <= 1.3*night/float64(nNight) {
		t.Fatalf("evening mean %v not clearly above night mean %v",
			eve/float64(nEve), night/float64(nNight))
	}
}

// Zone heterogeneity: the three study zones differ both in load level and
// sharply in daily *shape* — the conflicting-pattern property that forces
// the centralized model into a compromise (paper §III-E).
func TestZoneHeterogeneity(t *testing.T) {
	clients, err := StudyClients(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != 3 {
		t.Fatalf("%d clients", len(clients))
	}
	// Hour-of-day mean profile per zone.
	profiles := make([][]float64, 3)
	means := make([]float64, 3)
	for i, c := range clients {
		prof := make([]float64, 24)
		counts := make([]float64, 24)
		var sum float64
		for k, v := range c.Series.Values {
			h := c.Series.TimeAt(k).Hour()
			prof[h] += v
			counts[h]++
			sum += v
		}
		for h := range prof {
			prof[h] /= counts[h]
		}
		profiles[i] = prof
		means[i] = sum / float64(c.Series.Len())
	}
	// Levels differ: zones occupy distinct load regimes.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			ratio := means[i] / means[j]
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio < 1.1 {
				t.Fatalf("zones %d and %d levels too similar: %v", i, j, means)
			}
		}
	}
	// Shapes conflict: pairwise correlation of daily profiles is low.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if c := pearson(profiles[i], profiles[j]); c > 0.8 {
				t.Fatalf("zones %d and %d daily shapes too similar (corr %v)", i, j, c)
			}
		}
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	return cov / math.Sqrt(va*vb)
}

// Zone 108 must have markedly more natural spikes than 102/105.
func TestZone108Spikiness(t *testing.T) {
	clients, err := StudyClients(13)
	if err != nil {
		t.Fatal(err)
	}
	count := func(spikes []bool) int {
		n := 0
		for _, s := range spikes {
			if s {
				n++
			}
		}
		return n
	}
	n102 := count(clients[0].NaturalSpikes)
	n108 := count(clients[2].NaturalSpikes)
	if n108 <= 3*n102 {
		t.Fatalf("zone 108 spikes (%d) not dominating zone 102 (%d)", n108, n102)
	}
}

func TestProfileForZone(t *testing.T) {
	if _, err := ProfileForZone(0); err == nil {
		t.Fatal("zone 0 should error")
	}
	if _, err := ProfileForZone(TotalZones + 1); err == nil {
		t.Fatal("zone 332 should error")
	}
	p102, err := ProfileForZone(102)
	if err != nil {
		t.Fatal(err)
	}
	if p102.Zone != "102" || p102.Base != Profile102().Base {
		t.Fatalf("zone 102 profile %+v", p102)
	}
	// Procedural zones are deterministic and distinct.
	a, err := ProfileForZone(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileForZone(7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("procedural profile not deterministic")
	}
	c, err := ProfileForZone(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base == c.Base && a.DailyAmp == c.DailyAmp {
		t.Fatal("adjacent procedural zones identical")
	}
}

func TestGenerateFiveMinuteAggregation(t *testing.T) {
	raw, hourly, err := GenerateFiveMinute(Config{Profile: Profile102(), Hours: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Len() != 48*12 {
		t.Fatalf("raw length %d", raw.Len())
	}
	if hourly.Len() != 48 {
		t.Fatalf("hourly length %d", hourly.Len())
	}
	if raw.Step != 5*time.Minute || hourly.Step != time.Hour {
		t.Fatalf("steps %v %v", raw.Step, hourly.Step)
	}
	// The hourly aggregate tracks the underlying hourly mean closely.
	direct, err := Generate(Config{Profile: Profile102(), Hours: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hourly.Values {
		rel := math.Abs(hourly.Values[i]-direct.Series.Values[i]) / (1 + direct.Series.Values[i])
		if rel > 0.15 {
			t.Fatalf("hour %d: aggregate %v vs direct %v", i, hourly.Values[i], direct.Series.Values[i])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	res, err := Generate(Config{Profile: Profile108(), Hours: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res.Series); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Series.Len() {
		t.Fatalf("length %d vs %d", back.Len(), res.Series.Len())
	}
	if !back.Start.Equal(res.Series.Start) || back.Step != res.Series.Step {
		t.Fatalf("metadata mismatch: %v/%v vs %v/%v", back.Start, back.Step, res.Series.Start, res.Series.Step)
	}
	for i := range back.Values {
		if back.Values[i] != res.Series.Values[i] {
			t.Fatalf("value %d: %v vs %v", i, back.Values[i], res.Series.Values[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"timestamp,volume_kwh\n",
		"timestamp,volume_kwh\nnot-a-time,1\n",
		"timestamp,volume_kwh\n2022-09-01T00:00:00Z,notanumber\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d should error", i)
		}
	}
}
