package baseline

import (
	"errors"
	"math"
	"testing"

	"github.com/evfed/evfed/internal/metrics"
	"github.com/evfed/evfed/internal/rng"
)

func sine(n int, noise float64, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/24) + r.Normal(0, noise)
	}
	return out
}

func TestPersistence(t *testing.T) {
	var p Persistence
	if err := p.Fit(nil); err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("persistence %v", got)
	}
	if _, err := p.Predict(nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestSeasonalNaive(t *testing.T) {
	s := SeasonalNaive{Period: 3}
	got, err := s.Predict([]float64{7, 8, 9, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("seasonal naive %v", got)
	}
	if err := (SeasonalNaive{}).Fit(nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	if _, err := s.Predict([]float64{1, 2}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestSeasonalNaiveOnPeriodicSignal(t *testing.T) {
	// On a pure 24-periodic signal, seasonal-naive with period 24 is exact.
	vals := sine(300, 0, 1)
	s := SeasonalNaive{Period: 24}
	truth, preds, err := EvalOneStep(s, vals, 24)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := metrics.EvalRegression(truth, preds)
	if err != nil {
		t.Fatal(err)
	}
	if reg.RMSE > 1e-9 {
		t.Fatalf("seasonal naive RMSE %v on pure periodic signal", reg.RMSE)
	}
}

func TestRidgeFitsLinearProcess(t *testing.T) {
	// AR(2) process: ridge must recover near-perfect predictions.
	r := rng.New(3)
	n := 500
	vals := make([]float64, n)
	vals[0], vals[1] = 1, 1
	for i := 2; i < n; i++ {
		vals[i] = 0.6*vals[i-1] + 0.3*vals[i-2] + 1 + r.Normal(0, 0.01)
	}
	ridge := &Ridge{SeqLen: 4, Lambda: 1e-6}
	if err := ridge.Fit(vals[:400]); err != nil {
		t.Fatal(err)
	}
	truth, preds, err := EvalOneStep(ridge, vals[400:], 4)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := metrics.EvalRegression(truth, preds)
	if err != nil {
		t.Fatal(err)
	}
	// One-step-ahead error on an AR(2) process is bounded below by the
	// innovation noise (σ = 0.01); a correctly fitted ridge must get
	// within a factor of two of that floor.
	if reg.RMSE > 0.02 {
		t.Fatalf("ridge RMSE %v, innovation floor is 0.01", reg.RMSE)
	}
}

func TestRidgeValidation(t *testing.T) {
	bad := &Ridge{SeqLen: 0}
	if err := bad.Fit(sine(100, 0.1, 1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	bad2 := &Ridge{SeqLen: 4, Lambda: -1}
	if err := bad2.Fit(sine(100, 0.1, 1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	unfit := &Ridge{SeqLen: 4, Lambda: 0.1}
	if _, err := unfit.Predict(make([]float64, 4)); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("want ErrNotFitted, got %v", err)
	}
	fitted := &Ridge{SeqLen: 4, Lambda: 0.1}
	if err := fitted.Fit(sine(100, 0.1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := fitted.Predict(make([]float64, 3)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestBaselineOrdering(t *testing.T) {
	// On a noisy periodic series, seasonal-naive and ridge must beat
	// persistence (which lags the signal).
	vals := sine(600, 0.3, 7)
	seqLen := 48
	rmse := func(f Forecaster) float64 {
		if err := f.Fit(vals[:480]); err != nil {
			t.Fatal(err)
		}
		truth, preds, err := EvalOneStep(f, vals[480:], seqLen)
		if err != nil {
			t.Fatal(err)
		}
		reg, err := metrics.EvalRegression(truth, preds)
		if err != nil {
			t.Fatal(err)
		}
		return reg.RMSE
	}
	pers := rmse(Persistence{})
	seas := rmse(SeasonalNaive{Period: 24})
	ridge := rmse(&Ridge{SeqLen: seqLen, Lambda: 0.1})
	if seas >= pers {
		t.Fatalf("seasonal (%v) should beat persistence (%v) on periodic data", seas, pers)
	}
	if ridge >= pers {
		t.Fatalf("ridge (%v) should beat persistence (%v)", ridge, pers)
	}
}

func TestEvalOneStepErrors(t *testing.T) {
	if _, _, err := EvalOneStep(Persistence{}, make([]float64, 3), 5); err == nil {
		t.Fatal("short test series should error")
	}
}
