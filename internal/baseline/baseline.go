// Package baseline implements the classical forecasting baselines the
// paper's introduction positions LSTM against: persistence (naive last
// value), seasonal-naive (value one season ago), and an autoregressive
// ridge regression over the look-back window (the linear-model stand-in
// for the ARIMA/SVM family).
package baseline

import (
	"errors"
	"fmt"

	"github.com/evfed/evfed/internal/series"
)

// Errors returned by the package.
var (
	ErrBadConfig = errors.New("baseline: invalid configuration")
	ErrNotFitted = errors.New("baseline: model not fitted")
)

// Forecaster is a one-step-ahead predictor over a look-back window.
type Forecaster interface {
	// Name identifies the baseline in reports.
	Name() string
	// Fit trains on the training series (no-op for naive methods).
	Fit(train []float64) error
	// Predict forecasts the value following the look-back window.
	Predict(window []float64) (float64, error)
}

// Persistence predicts the last observed value.
type Persistence struct{}

var _ Forecaster = Persistence{}

// Name implements Forecaster.
func (Persistence) Name() string { return "persistence" }

// Fit implements Forecaster.
func (Persistence) Fit([]float64) error { return nil }

// Predict implements Forecaster.
func (Persistence) Predict(window []float64) (float64, error) {
	if len(window) == 0 {
		return 0, fmt.Errorf("%w: empty window", ErrBadConfig)
	}
	return window[len(window)-1], nil
}

// SeasonalNaive predicts the value one season back (Period samples).
type SeasonalNaive struct {
	// Period is the season length (24 for daily seasonality at hourly
	// resolution).
	Period int
}

var _ Forecaster = SeasonalNaive{}

// Name implements Forecaster.
func (s SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive(%d)", s.Period) }

// Fit implements Forecaster.
func (s SeasonalNaive) Fit([]float64) error {
	if s.Period <= 0 {
		return fmt.Errorf("%w: period %d", ErrBadConfig, s.Period)
	}
	return nil
}

// Predict implements Forecaster.
func (s SeasonalNaive) Predict(window []float64) (float64, error) {
	if s.Period <= 0 || len(window) < s.Period {
		return 0, fmt.Errorf("%w: window %d for period %d", ErrBadConfig, len(window), s.Period)
	}
	return window[len(window)-s.Period], nil
}

// Ridge is an L2-regularized autoregressive linear model over the
// look-back window: y ≈ w·window + b, fitted by solving the regularized
// normal equations with Gaussian elimination.
type Ridge struct {
	// SeqLen is the look-back length.
	SeqLen int
	// Lambda is the L2 regularization strength.
	Lambda float64

	w      []float64
	b      float64
	fitted bool
}

var _ Forecaster = (*Ridge)(nil)

// Name implements Forecaster.
func (r *Ridge) Name() string { return fmt.Sprintf("ridge(seq=%d,λ=%g)", r.SeqLen, r.Lambda) }

// Fit implements Forecaster: builds the window design matrix and solves
// (XᵀX + λI)w = Xᵀy.
func (r *Ridge) Fit(train []float64) error {
	if r.SeqLen <= 0 {
		return fmt.Errorf("%w: seqLen %d", ErrBadConfig, r.SeqLen)
	}
	if r.Lambda < 0 {
		return fmt.Errorf("%w: lambda %v", ErrBadConfig, r.Lambda)
	}
	ws, err := series.MakeWindows(train, r.SeqLen)
	if err != nil {
		return fmt.Errorf("baseline: ridge windows: %w", err)
	}
	d := r.SeqLen + 1 // +1 for the bias column
	// Normal equations accumulation.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1) // augmented column = Xᵀy
	}
	row := make([]float64, d)
	for _, w := range ws {
		for k := 0; k < r.SeqLen; k++ {
			row[k] = w.Input[k][0]
		}
		row[d-1] = 1
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][d] += row[i] * w.Target
		}
	}
	for i := 0; i < d-1; i++ {
		a[i][i] += r.Lambda // do not regularize the bias
	}
	sol, err := solveGauss(a)
	if err != nil {
		return fmt.Errorf("baseline: ridge solve: %w", err)
	}
	r.w = sol[:d-1]
	r.b = sol[d-1]
	r.fitted = true
	return nil
}

// Predict implements Forecaster.
func (r *Ridge) Predict(window []float64) (float64, error) {
	if !r.fitted {
		return 0, ErrNotFitted
	}
	if len(window) != r.SeqLen {
		return 0, fmt.Errorf("%w: window %d, fitted seqLen %d", ErrBadConfig, len(window), r.SeqLen)
	}
	out := r.b
	for i, v := range window {
		out += r.w[i] * v
	}
	return out, nil
}

// solveGauss solves the augmented system a·x = a[:, last] in place with
// partial pivoting.
func solveGauss(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[best][col]) {
				best = r
			}
		}
		a[col], a[best] = a[best], a[col]
		if abs(a[col][col]) < 1e-12 {
			return nil, errors.New("singular system")
		}
		inv := 1 / a[col][col]
		for j := col; j <= n; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j <= n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a[i][n]
	}
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// EvalOneStep runs a fitted forecaster over every window of test and
// returns aligned (truth, predictions).
func EvalOneStep(f Forecaster, test []float64, seqLen int) (truth, preds []float64, err error) {
	ws, err := series.MakeWindows(test, seqLen)
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: eval windows: %w", err)
	}
	window := make([]float64, seqLen)
	for _, w := range ws {
		for k := 0; k < seqLen; k++ {
			window[k] = w.Input[k][0]
		}
		p, err := f.Predict(window)
		if err != nil {
			return nil, nil, err
		}
		truth = append(truth, w.Target)
		preds = append(preds, p)
	}
	return truth, preds, nil
}
