package scale

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/evfed/evfed/internal/rng"
)

func TestMinMaxBasic(t *testing.T) {
	var s MinMaxScaler
	out, err := s.FitTransform([]float64{0, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v want %v", out, want)
		}
	}
	if s.Min != 0 || s.Max != 10 {
		t.Fatalf("fitted bounds %v %v", s.Min, s.Max)
	}
}

func TestMinMaxRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(50, 20)
		}
		var s MinMaxScaler
		scaled, err := s.FitTransform(xs)
		if err != nil {
			return false
		}
		back, err := s.Inverse(scaled)
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(back[i]-xs[i]) > 1e-9*(1+math.Abs(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 100)
		}
		var s MinMaxScaler
		scaled, err := s.FitTransform(xs)
		if err != nil {
			return false
		}
		for _, v := range scaled {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxConstantSeries(t *testing.T) {
	var s MinMaxScaler
	out, err := s.FitTransform([]float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("constant series should scale to zeros, got %v", out)
		}
	}
	back, err := s.Inverse(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range back {
		if v != 3 {
			t.Fatalf("inverse of constant series: %v", back)
		}
	}
}

func TestMinMaxUnfitted(t *testing.T) {
	var s MinMaxScaler
	if _, err := s.Transform([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("want ErrNotFitted, got %v", err)
	}
	if _, err := s.Inverse([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("want ErrNotFitted, got %v", err)
	}
	if _, err := s.InverseValue(1); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("want ErrNotFitted, got %v", err)
	}
}

func TestMinMaxEmptyFit(t *testing.T) {
	var s MinMaxScaler
	if err := s.Fit(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("want ErrEmptyInput, got %v", err)
	}
}

func TestMinMaxOutOfSampleExtrapolates(t *testing.T) {
	var s MinMaxScaler
	if err := s.Fit([]float64{0, 10}); err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform([]float64{20, -10})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != -1 {
		t.Fatalf("out-of-sample transform %v", out)
	}
}

func TestStandardBasic(t *testing.T) {
	var s StandardScaler
	out, err := s.FitTransform([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 2 {
		t.Fatalf("mean %v", s.Mean)
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("standardized sum %v", sum)
	}
}

func TestStandardMomentsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(-7, 13)
		}
		var s StandardScaler
		out, err := s.FitTransform(xs)
		if err != nil {
			return false
		}
		var mean float64
		for _, v := range out {
			mean += v
		}
		mean /= float64(n)
		var variance float64
		for _, v := range out {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(n)
		return math.Abs(mean) < 1e-9 && math.Abs(variance-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStandardRoundTrip(t *testing.T) {
	xs := []float64{4, 8, 15, 16, 23, 42}
	var s StandardScaler
	scaled, err := s.FitTransform(xs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Inverse(scaled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1e-9 {
			t.Fatalf("round trip %v -> %v", xs, back)
		}
	}
}

func TestStandardConstant(t *testing.T) {
	var s StandardScaler
	out, err := s.FitTransform([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("constant series standardization %v", out)
		}
	}
}

func TestStandardUnfitted(t *testing.T) {
	var s StandardScaler
	if _, err := s.Transform([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("want ErrNotFitted, got %v", err)
	}
	if err := s.Fit(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("want ErrEmptyInput, got %v", err)
	}
}
