// Package scale provides feature scaling used by the forecasting pipeline.
//
// The paper applies MinMax normalization independently to each client's raw
// series (fitted on the training portion and applied to both splits) so all
// model inputs lie in [0, 1]. StandardScaler is provided for the detection
// baselines.
package scale

import (
	"errors"
	"math"
)

// ErrNotFitted is returned when Transform/Inverse is called before Fit.
var ErrNotFitted = errors.New("scale: scaler has not been fitted")

// ErrEmptyInput is returned when Fit receives no data.
var ErrEmptyInput = errors.New("scale: cannot fit on empty input")

// MinMaxScaler rescales values to [0, 1] via (x - min) / (max - min).
// A degenerate series (max == min) maps every value to 0, matching
// scikit-learn's behaviour of emitting the lower bound.
type MinMaxScaler struct {
	Min, Max float64
	fitted   bool
}

// Fit computes the data minimum and maximum.
func (s *MinMaxScaler) Fit(xs []float64) error {
	if len(xs) == 0 {
		return ErrEmptyInput
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.fitted = true
	return nil
}

// Transform returns a scaled copy of xs.
func (s *MinMaxScaler) Transform(xs []float64) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	out := make([]float64, len(xs))
	span := s.Max - s.Min
	if span == 0 {
		return out, nil // all zeros: degenerate constant series
	}
	for i, v := range xs {
		out[i] = (v - s.Min) / span
	}
	return out, nil
}

// Inverse maps scaled values back to the original units.
func (s *MinMaxScaler) Inverse(xs []float64) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	out := make([]float64, len(xs))
	span := s.Max - s.Min
	for i, v := range xs {
		out[i] = v*span + s.Min
	}
	return out, nil
}

// InverseValue maps a single scaled value back to original units.
func (s *MinMaxScaler) InverseValue(v float64) (float64, error) {
	if !s.fitted {
		return 0, ErrNotFitted
	}
	return v*(s.Max-s.Min) + s.Min, nil
}

// FitTransform fits on xs and returns the scaled copy.
func (s *MinMaxScaler) FitTransform(xs []float64) ([]float64, error) {
	if err := s.Fit(xs); err != nil {
		return nil, err
	}
	return s.Transform(xs)
}

// StandardScaler standardizes values to zero mean and unit variance.
type StandardScaler struct {
	Mean, Std float64
	fitted    bool
}

// Fit computes the sample mean and (population) standard deviation.
func (s *StandardScaler) Fit(xs []float64) error {
	if len(xs) == 0 {
		return ErrEmptyInput
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, v := range xs {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	s.fitted = true
	return nil
}

// Transform returns a standardized copy of xs. A zero-variance series maps
// to all zeros.
func (s *StandardScaler) Transform(xs []float64) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	out := make([]float64, len(xs))
	if s.Std == 0 {
		return out, nil
	}
	for i, v := range xs {
		out[i] = (v - s.Mean) / s.Std
	}
	return out, nil
}

// Inverse maps standardized values back to original units.
func (s *StandardScaler) Inverse(xs []float64) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v*s.Std + s.Mean
	}
	return out, nil
}

// FitTransform fits on xs and returns the standardized copy.
func (s *StandardScaler) FitTransform(xs []float64) ([]float64, error) {
	if err := s.Fit(xs); err != nil {
		return nil, err
	}
	return s.Transform(xs)
}
