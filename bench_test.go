// Benchmarks regenerating every table and figure of the paper's
// evaluation section at a reduced scale. Each benchmark reports the
// paper's metrics via b.ReportMetric (so `go test -bench .` prints the
// same quantities the paper tabulates); cmd/evfedbench runs the full-size
// configuration.
//
// Benchmark ↔ experiment map (see DESIGN.md §3):
//
//	BenchmarkTable1_*          — Table I scenario rows (Client 1)
//	BenchmarkTable2_Detection  — Table II per-client detection quality
//	BenchmarkTable3_FedVsCentral — Table III architecture comparison
//	BenchmarkFig2_ErrorBars    — Fig 2 RMSE/MAE series
//	BenchmarkFig3_R2Comparison — Fig 3 per-client R² series
//	BenchmarkHeadline_Scalars  — abstract's headline numbers
package evfed_test

import (
	"sync"
	"testing"

	"github.com/evfed/evfed/internal/eval"
)

// benchParams is the shared reduced configuration: small enough that a
// full scenario trains in roughly a second, large enough that the paper's
// qualitative shape (orderings, who wins) is preserved.
func benchParams() eval.Params {
	p := eval.QuickParams(42)
	p.Hours = 900
	p.Rounds = 2
	p.EpochsPerRound = 3
	p.AE.Epochs = 5
	return p
}

var (
	prepOnce    sync.Once
	prepClients []*eval.ClientPrep
	prepErr     error
)

// preparedClients runs the shared data+detection pipeline once per test
// binary: every table benchmark consumes the same prepared clients, like
// the paper's scenarios consume the same dataset.
func preparedClients(b *testing.B) []*eval.ClientPrep {
	b.Helper()
	prepOnce.Do(func() {
		prepClients, prepErr = eval.Prepare(benchParams())
	})
	if prepErr != nil {
		b.Fatal(prepErr)
	}
	return prepClients
}

func clientSeriesSet(clients []*eval.ClientPrep, pick func(*eval.ClientPrep) []float64) ([][]float64, []string) {
	vals := make([][]float64, len(clients))
	zones := make([]string, len(clients))
	for i, c := range clients {
		vals[i] = pick(c)
		zones[i] = c.Zone
	}
	return vals, zones
}

func benchFederatedScenario(b *testing.B, scenario string, pick func(*eval.ClientPrep) []float64) {
	clients := preparedClients(b)
	p := benchParams()
	vals, zones := clientSeriesSet(clients, pick)
	clean, _ := clientSeriesSet(clients, func(c *eval.ClientPrep) []float64 { return c.Clean })
	b.ResetTimer()
	var last *eval.ScenarioResult
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFederated(scenario, vals, clean, zones, p)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	m := last.PerClient[0]
	b.ReportMetric(m.MAE, "mae_kwh")
	b.ReportMetric(m.RMSE, "rmse_kwh")
	b.ReportMetric(m.R2, "r2")
}

// BenchmarkTable1_FedClean regenerates Table I row 1: federated LSTM on
// clean data, Client 1.
func BenchmarkTable1_FedClean(b *testing.B) {
	benchFederatedScenario(b, "clean", func(c *eval.ClientPrep) []float64 { return c.Clean })
}

// BenchmarkTable1_FedAttacked regenerates Table I row 2: federated LSTM
// on attacked data.
func BenchmarkTable1_FedAttacked(b *testing.B) {
	benchFederatedScenario(b, "attacked", func(c *eval.ClientPrep) []float64 { return c.Attacked })
}

// BenchmarkTable1_FedFiltered regenerates Table I row 3: federated LSTM
// on filtered data.
func BenchmarkTable1_FedFiltered(b *testing.B) {
	benchFederatedScenario(b, "filtered", func(c *eval.ClientPrep) []float64 { return c.Filtered })
}

// BenchmarkTable1_CentralFiltered regenerates Table I row 4: the
// centralized LSTM on the same filtered data.
func BenchmarkTable1_CentralFiltered(b *testing.B) {
	clients := preparedClients(b)
	p := benchParams()
	vals, _ := clientSeriesSet(clients, func(c *eval.ClientPrep) []float64 { return c.Filtered })
	clean, _ := clientSeriesSet(clients, func(c *eval.ClientPrep) []float64 { return c.Clean })
	b.ResetTimer()
	var last *eval.ScenarioResult
	for i := 0; i < b.N; i++ {
		res, err := eval.RunCentralized("filtered", vals, clean, p)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	m := last.PerClient[0]
	b.ReportMetric(m.MAE, "mae_kwh")
	b.ReportMetric(m.RMSE, "rmse_kwh")
	b.ReportMetric(m.R2, "r2")
}

// BenchmarkTable2_Detection regenerates Table II: the full per-client
// detection pipeline (autoencoder training, calibration, detection,
// mitigation), reporting each client's precision/recall/F1.
func BenchmarkTable2_Detection(b *testing.B) {
	p := benchParams()
	b.ResetTimer()
	var clients []*eval.ClientPrep
	for i := 0; i < b.N; i++ {
		var err error
		clients, err = eval.Prepare(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for i, c := range clients {
		suffix := "_c" + string(rune('1'+i))
		b.ReportMetric(c.Detection.Precision, "precision"+suffix)
		b.ReportMetric(c.Detection.Recall, "recall"+suffix)
		b.ReportMetric(c.Detection.F1, "f1"+suffix)
	}
}

// BenchmarkTable3_FedVsCentral regenerates Table III: both architectures
// on identical filtered data, reporting per-client R².
func BenchmarkTable3_FedVsCentral(b *testing.B) {
	clients := preparedClients(b)
	p := benchParams()
	vals, zones := clientSeriesSet(clients, func(c *eval.ClientPrep) []float64 { return c.Filtered })
	clean, _ := clientSeriesSet(clients, func(c *eval.ClientPrep) []float64 { return c.Clean })
	b.ResetTimer()
	var fedRes, cenRes *eval.ScenarioResult
	for i := 0; i < b.N; i++ {
		var err error
		fedRes, err = eval.RunFederated("filtered", vals, clean, zones, p)
		if err != nil {
			b.Fatal(err)
		}
		cenRes, err = eval.RunCentralized("filtered", vals, clean, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for i := range clients {
		suffix := "_c" + string(rune('1'+i))
		b.ReportMetric(fedRes.PerClient[i].R2, "fed_r2"+suffix)
		b.ReportMetric(cenRes.PerClient[i].R2, "central_r2"+suffix)
	}
}

// BenchmarkFig2_ErrorBars regenerates the Fig 2 series: Client 1 RMSE and
// MAE across the three federated data scenarios.
func BenchmarkFig2_ErrorBars(b *testing.B) {
	clients := preparedClients(b)
	p := benchParams()
	clean, zones := clientSeriesSet(clients, func(c *eval.ClientPrep) []float64 { return c.Clean })
	picks := map[string]func(*eval.ClientPrep) []float64{
		"clean":    func(c *eval.ClientPrep) []float64 { return c.Clean },
		"attacked": func(c *eval.ClientPrep) []float64 { return c.Attacked },
		"filtered": func(c *eval.ClientPrep) []float64 { return c.Filtered },
	}
	b.ResetTimer()
	results := make(map[string]*eval.ScenarioResult, len(picks))
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"clean", "attacked", "filtered"} {
			vals, _ := clientSeriesSet(clients, picks[name])
			res, err := eval.RunFederated(name, vals, clean, zones, p)
			if err != nil {
				b.Fatal(err)
			}
			results[name] = res
		}
	}
	b.StopTimer()
	for _, name := range []string{"clean", "attacked", "filtered"} {
		m := results[name].PerClient[0]
		b.ReportMetric(m.RMSE, "rmse_"+name)
		b.ReportMetric(m.MAE, "mae_"+name)
	}
}

// BenchmarkFig3_R2Comparison regenerates the Fig 3 series: per-client R²
// for federated vs centralized on filtered data.
func BenchmarkFig3_R2Comparison(b *testing.B) {
	BenchmarkTable3_FedVsCentral(b)
}

// BenchmarkHeadline_Scalars regenerates the abstract's headline numbers
// (R² improvement, recovery fraction, pooled precision/FPR, training-time
// reduction) by running the complete four-scenario protocol.
func BenchmarkHeadline_Scalars(b *testing.B) {
	p := benchParams()
	clients := preparedClients(b)
	b.ResetTimer()
	var rep *eval.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = eval.RunScenarios(p, clients)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rep.Headline.R2ImprovementPct, "r2_improvement_pct")
	b.ReportMetric(rep.Headline.RecoveryPct, "recovery_pct")
	b.ReportMetric(rep.Headline.OverallPrecision, "precision")
	b.ReportMetric(rep.Headline.OverallFPRPct, "fpr_pct")
	b.ReportMetric(rep.Headline.TimeReductionPct, "time_reduction_pct")
}
