// Attack mitigation: inject DDoS-derived anomalies into a station's
// charging data, detect them with the LSTM autoencoder, mitigate by
// interpolation, and report detection quality and data recovery.
//
//	go run ./examples/attack_mitigation
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/evfed/evfed"
	"github.com/evfed/evfed/internal/scale"
	"github.com/evfed/evfed/internal/series"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const hours = 2200

	// 1. Clean data for zone 102, then a DDoS campaign on top of it.
	s, err := evfed.GenerateZone(evfed.Zone102(), hours, 11)
	if err != nil {
		return err
	}
	episodes, err := evfed.ScheduleAttacks(hours, 11)
	if err != nil {
		return err
	}
	attacked, labels, err := evfed.InjectDDoS(s.Values, episodes, 11)
	if err != nil {
		return err
	}
	nAttacked := 0
	for _, l := range labels {
		if l {
			nAttacked++
		}
	}
	fmt.Printf("injected %d attack episodes covering %d/%d hours (%.1f%%)\n",
		len(episodes), nAttacked, hours, 100*float64(nAttacked)/hours)

	// 2. Train the detector on the clean training split (scaled to [0,1]).
	train, _, err := series.SplitValues(s.Values, 0.8)
	if err != nil {
		return err
	}
	var sc scale.MinMaxScaler
	scaledTrain, err := sc.FitTransform(train)
	if err != nil {
		return err
	}
	detCfg := evfed.DetectorConfig{
		SeqLen: 24, EncoderUnits: 12, Bottleneck: 6, Dropout: 0.2,
		Epochs: 8, BatchSize: 32, LearningRate: 0.001,
		Patience: 10, ValFrac: 0.1, TrainStride: 3, Seed: 11,
	}
	filtCfg := evfed.FilterConfig{
		ThresholdPercentile: 98, MaxGap: 2, MinRunLen: 2,
		Mitigation: 1, // linear interpolation
	}
	filter, err := evfed.TrainFilter(scaledTrain, detCfg, filtCfg)
	if err != nil {
		return err
	}
	thr, err := filter.Threshold()
	if err != nil {
		return err
	}
	fmt.Printf("calibrated 98th-percentile threshold: %.6g\n", thr)

	// 3. Detect + mitigate on the attacked stream.
	scaledAttacked, err := sc.Transform(attacked)
	if err != nil {
		return err
	}
	res, err := filter.Apply(scaledAttacked)
	if err != nil {
		return err
	}
	det, err := evfed.EvalDetection(labels, res.Flags)
	if err != nil {
		return err
	}
	fmt.Printf("detection: precision %.3f  recall %.3f  F1 %.3f  FPR %.2f%%\n",
		det.Precision, det.Recall, det.F1, 100*det.FPR)
	fmt.Printf("mitigated %d anomalous segments\n", len(res.Runs))

	// 4. How much closer is the filtered series to the clean truth?
	filtered, err := sc.Inverse(res.Filtered)
	if err != nil {
		return err
	}
	var attackedDist, filteredDist float64
	for i := range s.Values {
		attackedDist += math.Abs(attacked[i] - s.Values[i])
		filteredDist += math.Abs(filtered[i] - s.Values[i])
	}
	fmt.Printf("mean |deviation from clean|: attacked %.3f kWh, filtered %.3f kWh (%.1f%% recovered)\n",
		attackedDist/hours, filteredDist/hours, 100*(1-filteredDist/attackedDist))
	return nil
}
