// Live cluster: a genuinely distributed federation over TCP. Three
// charging-station processes are simulated by three in-process TCP
// servers on loopback; the coordinator only ever sees model weights.
// Swap the loopback addresses for real hosts to deploy across machines.
//
//	go run ./examples/live_cluster
package main

import (
	"fmt"
	"log"

	"github.com/evfed/evfed"
	"github.com/evfed/evfed/internal/scale"
	"github.com/evfed/evfed/internal/series"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		hours       = 800
		seqLen      = 24
		lstmUnits   = 12
		denseHidden = 6
	)
	profiles := []evfed.ZoneProfile{evfed.Zone102(), evfed.Zone105(), evfed.Zone108()}

	// Start one TCP server per station (in production each of these runs
	// on the station's own hardware — the raw series below never leaves
	// this process boundary).
	var handles []evfed.ClientHandle
	for i, prof := range profiles {
		s, err := evfed.GenerateZone(prof, hours, 23)
		if err != nil {
			return err
		}
		train, _, err := series.SplitValues(s.Values, 0.8)
		if err != nil {
			return err
		}
		var sc scale.MinMaxScaler
		scaledTrain, err := sc.FitTransform(train)
		if err != nil {
			return err
		}
		client, err := evfed.NewFederatedClient("station-"+prof.Zone, scaledTrain, seqLen, lstmUnits, denseHidden, uint64(i+31))
		if err != nil {
			return err
		}
		srv, err := evfed.ServeFederatedClient(client, "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Stop()
		fmt.Printf("station %s serving on %s (%d private training windows)\n",
			prof.Zone, srv.Addr(), mustSamples(client))
		handles = append(handles, evfed.NewRemoteClient(client.ID(), srv.Addr()))
	}

	// The coordinator never touches raw data: it ships weight vectors to
	// the stations and averages what comes back.
	cfg := evfed.FederatedConfig{
		Rounds:         2,
		EpochsPerRound: 3,
		BatchSize:      32,
		LearningRate:   0.001,
		Seed:           23,
		Parallel:       true,
	}
	res, err := evfed.RunFederation(handles, lstmUnits, denseHidden, cfg)
	if err != nil {
		return err
	}
	for _, rs := range res.Rounds {
		fmt.Printf("round %d: %d participants, weighted local loss %.6f, %.2fs\n",
			rs.Round+1, len(rs.Participants), rs.MeanLoss, rs.WallSeconds)
	}
	fmt.Printf("federation complete: %d-dimensional global model in %.1fs wall clock\n",
		len(res.Global), res.WallSeconds)
	return nil
}

func mustSamples(c *evfed.FederatedClient) int {
	n, err := c.NumSamples()
	if err != nil {
		return -1
	}
	return n
}
