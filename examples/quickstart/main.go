// Quickstart: generate one zone's charging data, train a small federated
// forecaster across three stations, and print test-set accuracy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/evfed/evfed"
	"github.com/evfed/evfed/internal/scale"
	"github.com/evfed/evfed/internal/series"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		hours       = 1000
		seqLen      = 24
		lstmUnits   = 16
		denseHidden = 6
	)

	// 1. Synthesize three stations' hourly charging volumes.
	profiles := []evfed.ZoneProfile{evfed.Zone102(), evfed.Zone105(), evfed.Zone108()}
	var handles []evfed.ClientHandle
	type evalSet struct {
		scaler  scale.MinMaxScaler
		windows []series.Window
		truth   []float64
	}
	evals := make([]*evalSet, 0, len(profiles))

	for i, prof := range profiles {
		s, err := evfed.GenerateZone(prof, hours, 7)
		if err != nil {
			return err
		}
		// 2. Per-station MinMax scaling fitted on the 80% training split.
		train, test, err := series.SplitValues(s.Values, 0.8)
		if err != nil {
			return err
		}
		var es evalSet
		scaledTrain, err := es.scaler.FitTransform(train)
		if err != nil {
			return err
		}
		scaledTest, err := es.scaler.Transform(test)
		if err != nil {
			return err
		}
		ctx := append(append([]float64{}, scaledTrain[len(scaledTrain)-seqLen:]...), scaledTest...)
		es.windows, err = series.MakeWindows(ctx, seqLen)
		if err != nil {
			return err
		}
		es.truth = test

		// 3. A federated client per station: raw data stays here.
		c, err := evfed.NewFederatedClient(prof.Zone, scaledTrain, seqLen, lstmUnits, denseHidden, uint64(i+1))
		if err != nil {
			return err
		}
		handles = append(handles, c)
		evals = append(evals, &es)
	}

	// 4. Federated training: only model weights cross station boundaries.
	cfg := evfed.FederatedConfig{
		Rounds:         3,
		EpochsPerRound: 4,
		BatchSize:      32,
		LearningRate:   0.001,
		Seed:           7,
		Parallel:       true,
	}
	res, err := evfed.RunFederation(handles, lstmUnits, denseHidden, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("federated training: %d rounds in %.1fs\n", len(res.Rounds), res.WallSeconds)

	// 5. Evaluate each station's locally specialized model on its own
	//    held-out data.
	for i, h := range handles {
		client, ok := h.(*evfed.FederatedClient)
		if !ok {
			return fmt.Errorf("unexpected handle type %T", h)
		}
		es := evals[i]
		preds := make([]float64, len(es.windows))
		for k, w := range es.windows {
			out := client.Model().Predict(w.Input)
			p, err := es.scaler.InverseValue(out[0][0])
			if err != nil {
				return err
			}
			preds[k] = p
		}
		reg, err := evfed.EvalForecast(es.truth, preds)
		if err != nil {
			return err
		}
		fmt.Printf("station %s: MAE %.3f kWh  RMSE %.3f kWh  R² %.4f\n",
			client.ID(), reg.MAE, reg.RMSE, reg.R2)
	}
	return nil
}
