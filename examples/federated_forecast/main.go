// Federated vs centralized: run the paper's architectural comparison on a
// reduced configuration and print the per-client results (the shape of
// Table III / Fig 3).
//
//	go run ./examples/federated_forecast
package main

import (
	"fmt"
	"log"

	"github.com/evfed/evfed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := evfed.QuickConfig(42)
	fmt.Printf("running the four-scenario experiment (%d hours/client, %d rounds × %d epochs)...\n",
		cfg.Hours, cfg.Rounds, cfg.EpochsPerRound)
	rep, err := evfed.RunExperiments(cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(rep.FormatTable3())
	fmt.Println()
	fmt.Print(rep.FormatFig3())
	fmt.Println()
	fmt.Print(rep.FormatHeadline())
	return nil
}
