// Streaming detection: monitor a live charging feed point by point with
// the online detector — the deployment mode of a real station, which
// cannot wait for a batch. An offline-calibrated threshold drives
// per-point verdicts using only past data.
//
//	go run ./examples/streaming_detection
package main

import (
	"fmt"
	"log"

	"github.com/evfed/evfed"
	"github.com/evfed/evfed/internal/scale"
	"github.com/evfed/evfed/internal/series"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const historyHours = 2200

	// 1. Historical clean data trains and calibrates the detector offline.
	s, err := evfed.GenerateZone(evfed.Zone105(), historyHours, 17)
	if err != nil {
		return err
	}
	train, _, err := series.SplitValues(s.Values, 0.8)
	if err != nil {
		return err
	}
	var sc scale.MinMaxScaler
	scaledTrain, err := sc.FitTransform(train)
	if err != nil {
		return err
	}
	detCfg := evfed.DetectorConfig{
		SeqLen: 24, EncoderUnits: 12, Bottleneck: 6, Dropout: 0.2,
		Epochs: 8, BatchSize: 32, LearningRate: 0.001,
		Patience: 10, ValFrac: 0.1, TrainStride: 3, Seed: 17,
	}
	filtCfg := evfed.FilterConfig{ThresholdPercentile: 98, MaxGap: 2, MinRunLen: 2, Mitigation: 1}
	filter, err := evfed.TrainFilter(scaledTrain, detCfg, filtCfg)
	if err != nil {
		return err
	}
	thr, err := filter.Threshold()
	if err != nil {
		return err
	}
	fmt.Printf("offline calibration done (threshold %.6g)\n", thr)

	// 2. A "live" feed: fresh data with a DDoS burst in the middle.
	live, err := evfed.GenerateZone(evfed.Zone105(), 400, 18)
	if err != nil {
		return err
	}
	episodes := []evfed.AttackEpisode{{Start: 200, Length: 12, Severity: 0.3}}
	attacked, labels, err := evfed.InjectDDoS(live.Values, episodes, 18)
	if err != nil {
		return err
	}
	scaledLive, err := sc.Transform(attacked)
	if err != nil {
		return err
	}

	// 3. Stream it through the online detector.
	stream, err := filter.NewStream()
	if err != nil {
		return err
	}
	var hits, misses, falseAlarms int
	for i, v := range scaledLive {
		d, err := stream.Push(v)
		if err != nil {
			return err
		}
		switch {
		case d.Flagged && labels[i]:
			hits++
		case d.Flagged && !labels[i]:
			falseAlarms++
		case !d.Flagged && labels[i] && d.Ready:
			misses++
		}
		if d.Flagged && labels[i] && hits == 1 {
			fmt.Printf("first alarm at stream index %d (attack began at 200)\n", d.Index)
		}
	}
	fmt.Printf("attack hours caught: %d, missed: %d, false alarms: %d over %d live points\n",
		hits, misses, falseAlarms, len(scaledLive))
	return nil
}
