package evfed_test

import (
	"fmt"

	"github.com/evfed/evfed"
)

// ExampleGenerateZone shows basic synthetic data generation for one of
// the paper's study zones.
func ExampleGenerateZone() {
	s, err := evfed.GenerateZone(evfed.Zone102(), 48, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d hourly samples starting %s\n", s.Len(), s.Start.Format("2006-01-02"))
	// Output:
	// 48 hourly samples starting 2022-09-01
}

// ExampleScheduleAttacks shows DDoS campaign scheduling over a series.
func ExampleScheduleAttacks() {
	episodes, err := evfed.ScheduleAttacks(4344, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	attacked := 0
	for _, e := range episodes {
		attacked += e.Length
	}
	fmt.Printf("%d episodes scheduled\n", len(episodes))
	fmt.Printf("prevalence band ok: %v\n", attacked > 200 && attacked < 1400)
	// Output:
	// 25 episodes scheduled
	// prevalence band ok: true
}

// ExampleEvalDetection shows detection scoring against ground truth.
func ExampleEvalDetection() {
	truth := []bool{true, true, false, false, true, false}
	flags := []bool{true, false, false, false, true, true}
	d, err := evfed.EvalDetection(truth, flags)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("precision %.2f recall %.2f\n", d.Precision, d.Recall)
	// Output:
	// precision 0.67 recall 0.67
}

// ExampleEvalForecast shows regression scoring.
func ExampleEvalForecast() {
	truth := []float64{10, 20, 30}
	pred := []float64{11, 19, 31}
	m, err := evfed.EvalForecast(truth, pred)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("MAE %.2f RMSE %.2f\n", m.MAE, m.RMSE)
	// Output:
	// MAE 1.00 RMSE 1.00
}

// ExampleInjectDDoS shows attack injection with ground-truth labels.
func ExampleInjectDDoS() {
	clean := make([]float64, 100)
	for i := range clean {
		clean[i] = 10
	}
	episodes := []evfed.AttackEpisode{{Start: 40, Length: 5, Severity: 0.5}}
	attacked, labels, err := evfed.InjectDDoS(clean, episodes, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	n := 0
	spiked := true
	for i, l := range labels {
		if l {
			n++
			if attacked[i] <= clean[i] {
				spiked = false
			}
		}
	}
	fmt.Printf("%d labeled hours, all spiked: %v\n", n, spiked)
	// Output:
	// 5 labeled hours, all spiked: true
}
